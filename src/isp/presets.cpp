#include "isp/presets.hpp"

#include "netcore/error.hpp"

namespace dynaddr::isp::presets {

namespace {

using bgp::Continent;
using net::Duration;
using net::IPv4Prefix;

IspSpec base_isp(std::uint32_t asn, std::string name,
                 std::vector<std::string> countries, Continent continent,
                 pool::AllocationStrategy strategy, double churn_per_hour,
                 double locality_bias) {
    IspSpec spec;
    spec.asn = asn;
    spec.name = std::move(name);
    spec.countries = std::move(countries);
    spec.continent = continent;
    spec.strategy = strategy;
    spec.churn_per_hour = churn_per_hour;
    spec.locality_bias = locality_bias;
    return spec;
}

/// Adds one announced aggregate plus the pool blocks carved from it.
void space(IspSpec& spec, const char* aggregate,
           std::initializer_list<const char*> pools) {
    spec.announced_prefixes.push_back(IPv4Prefix::parse_or_throw(aggregate));
    for (const char* p : pools)
        spec.pool_prefixes.push_back(IPv4Prefix::parse_or_throw(p));
}

Cohort ppp_cohort(int probes, std::optional<Duration> session_timeout,
                  double skip, double nightly_fraction = 0.0) {
    Cohort cohort;
    cohort.probe_count = probes;
    cohort.protocol = atlas::CpeConfig::Wan::Ppp;
    cohort.session_timeout = session_timeout;
    cohort.skip_renumber_probability = skip;
    cohort.fraction_nightly_reconnect = nightly_fraction;
    return cohort;
}

Cohort dhcp_cohort(int probes, Duration lease,
                   std::optional<Duration> max_age = std::nullopt,
                   double max_age_jitter = 0.6) {
    Cohort cohort;
    cohort.probe_count = probes;
    cohort.protocol = atlas::CpeConfig::Wan::Dhcp;
    cohort.dhcp_lease = lease;
    cohort.dhcp_max_age = max_age;
    cohort.dhcp_max_age_jitter = max_age ? max_age_jitter : 0.0;
    return cohort;
}

/// Quiet environment: few outages (North American cable profile).
OutageRates quiet_outages() {
    OutageRates rates;
    rates.power_per_year = 3.0;
    rates.net_per_year = 5.0;
    return rates;
}

/// Busy environment used in outage experiments so probes clear the
/// >= 3 network and >= 3 power outage bar within a year.
OutageRates busy_outages() {
    OutageRates rates;
    rates.power_per_year = 9.0;
    rates.net_per_year = 16.0;
    return rates;
}

void set_outages(IspSpec& spec, const OutageRates& rates) {
    for (auto& cohort : spec.cohorts) cohort.outages = rates;
}

}  // namespace

IspSpec orange() {
    // Table 5: d = 168 h, 111/122 periodic, MAX<=d 98 %. Table 6: the
    // renumber-on-any-outage archetype. Table 7: 68 % of changes cross BGP
    // prefixes, 53 % cross /8s. Figure 4: free-running (no night sync).
    auto spec = base_isp(3215, "Orange", {"FR"}, Continent::Europe,
                         pool::AllocationStrategy::RandomSpread, 0.01, 0.20);
    space(spec, "2.1.0.0/16", {"2.1.0.0/22"});
    space(spec, "2.9.0.0/16", {"2.9.0.0/22"});
    space(spec, "86.195.0.0/16", {"86.195.0.0/22"});
    space(spec, "90.3.0.0/16", {"90.3.0.0/22"});
    space(spec, "92.128.0.0/16", {"92.128.0.0/22"});
    space(spec, "92.140.0.0/16", {"92.140.0.0/22"});
    // 111 of 122 probes periodic (Table 5); the rest are DHCP lines that
    // renumber only when churn claims their address during a long outage.
    spec.cohorts = {ppp_cohort(111, Duration::hours(168), 0.0004),
                    dhcp_cohort(11, Duration::hours(24), Duration::hours(800))};
    // Weekly tenures are often cut short by outages/reconnects (paper:
    // only 14 % of Orange's periodic probes keep f > 0.75).
    for (auto& cohort : spec.cohorts) {
        cohort.outages.power_per_year = 14.0;
        cohort.outages.net_per_year = 28.0;
    }
    return spec;
}

IspSpec dtag() {
    // Table 5: d = 24 h, 51/63 periodic, MAX<=d 78 %, harmonics 98 %.
    // Figure 5: ~3/4 of periodic changes land in hours 0-6 (CPE privacy
    // reconnect). Table 7: only ~24 % of changes cross prefixes.
    auto spec = base_isp(3320, "DTAG", {"DE"}, Continent::Europe,
                         pool::AllocationStrategy::RandomSpread, 0.01, 0.55);
    space(spec, "87.128.0.0/14", {"87.128.0.0/22", "87.130.0.0/22"});
    space(spec, "217.224.0.0/14", {"217.224.0.0/22", "217.226.0.0/22"});
    // 51 of 63 probes periodic (Table 5).
    spec.cohorts = {ppp_cohort(51, Duration::hours(24), 0.003,
                               /*nightly_fraction=*/0.75),
                    dhcp_cohort(12, Duration::hours(24), Duration::hours(800))};
    return spec;
}

IspSpec bt() {
    // Table 5: a 2-week-periodic minority (13/67), weakly persistent.
    // Table 7: 44 % cross-BGP but 68 % cross-/16 — the /12 aggregate spans
    // many /16s.
    auto spec = base_isp(2856, "BT", {"GB"}, Continent::Europe,
                         pool::AllocationStrategy::RandomSpread, 0.0, 0.20);
    space(spec, "81.128.0.0/12",
          {"81.128.0.0/22", "81.133.0.0/22", "81.140.0.0/22"});
    space(spec, "86.128.0.0/14", {"86.128.0.0/22", "86.130.0.0/22"});
    spec.cohorts = {ppp_cohort(14, Duration::hours(337), 0.08),
                    ppp_cohort(53, std::nullopt, 0.0)};
    // Fortnightly tenures rarely run to term (paper: f>0.5 for only 15 %
    // of BT's periodic probes).
    spec.cohorts[0].outages.power_per_year = 12.0;
    spec.cohorts[0].outages.net_per_year = 22.0;
    return spec;
}

IspSpec lgi() {
    // Liberty Global: DHCP with sticky bindings; renumbering probability
    // grows with outage duration (Figure 9 left). Modest pool churn gives
    // ~3 % change for sub-hour outages and a majority for multi-day ones.
    auto spec = base_isp(6830, "LGI", {"NL", "CH", "AT", "HU", "PL", "IE"},
                         Continent::Europe, pool::AllocationStrategy::Sticky,
                         0.08, 0.40);
    space(spec, "62.163.0.0/16", {"62.163.0.0/22"});
    space(spec, "80.57.0.0/16", {"80.57.0.0/22"});
    space(spec, "84.116.0.0/16", {"84.116.0.0/22"});
    space(spec, "89.98.0.0/16", {"89.98.0.0/22"});
    spec.cohorts = {dhcp_cohort(90, Duration::hours(4), Duration::hours(700))};
    return spec;
}

IspSpec verizon() {
    // DHCP, extremely stable: address durations of weeks to months, no
    // periodic modes, low prefix spread (Table 7: 23 % cross-BGP).
    auto spec = base_isp(701, "Verizon", {"US"}, Continent::NorthAmerica,
                         pool::AllocationStrategy::Sticky, 0.05, 0.70);
    space(spec, "71.104.0.0/16", {"71.104.0.0/22"});
    space(spec, "71.106.0.0/16", {"71.106.0.0/22"});
    space(spec, "96.224.0.0/16", {"96.224.0.0/22"});
    spec.cohorts = {dhcp_cohort(48, Duration::hours(24), Duration::hours(1700))};
    set_outages(spec, quiet_outages());
    return spec;
}

std::vector<IspSpec> paper_world() {
    std::vector<IspSpec> world;
    world.push_back(orange());
    world.push_back(dtag());
    world.push_back(bt());
    world.push_back(lgi());
    world.push_back(verizon());

    {  // Telefonica Germany 2 — Table 5: d=24h, 15/17 periodic.
        auto spec = base_isp(6805, "Telefonica DE 2", {"DE"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.35);
        space(spec, "91.64.0.0/16", {"91.64.0.0/22"});
    space(spec, "91.66.0.0/16", {"91.66.0.0/22"});
        spec.cohorts = {ppp_cohort(15, Duration::hours(24), 0.0036, 0.4),
                        dhcp_cohort(2, Duration::hours(24), Duration::hours(1000))};
        world.push_back(spec);
    }
    {  // Telefonica Germany 1 — d=24h, 14/14 periodic.
        auto spec = base_isp(13184, "Telefonica DE 1", {"DE"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.35);
        space(spec, "93.128.0.0/16", {"93.128.0.0/22"});
    space(spec, "93.130.0.0/16", {"93.130.0.0/22"});
        spec.cohorts = {ppp_cohort(14, Duration::hours(24), 0.0043, 0.4)};
        world.push_back(spec);
    }
    {  // PJSC Rostelecom — d=24h for a 13/22 majority.
        auto spec = base_isp(8997, "PJSC Rostelecom", {"RU"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "188.16.0.0/16", {"188.16.0.0/22"});
    space(spec, "188.18.0.0/16", {"188.18.0.0/22"});
        spec.cohorts = {ppp_cohort(13, Duration::hours(24), 0.004),
                        dhcp_cohort(9, Duration::hours(24), Duration::hours(900))};
        world.push_back(spec);
    }
    {  // Proximus — 36 h cohort, a smaller 24 h cohort, and a PPP rest.
        auto spec = base_isp(5432, "Proximus", {"BE"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.45);
        space(spec, "91.176.0.0/16", {"91.176.0.0/22"});
    space(spec, "91.178.0.0/16", {"91.178.0.0/22"});
        space(spec, "178.116.0.0/16", {"178.116.0.0/22"});
        spec.cohorts = {ppp_cohort(12, Duration::hours(36), 0.015),
                        ppp_cohort(4, Duration::hours(24), 0.015),
                        ppp_cohort(25, std::nullopt, 0.0)};
        world.push_back(spec);
    }
    {  // A1 Telekom Austria — d=24h, 11/12 periodic, strongly persistent.
        auto spec = base_isp(8447, "A1 Telekom", {"AT"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.40);
        space(spec, "91.112.0.0/16", {"91.112.0.0/22"});
    space(spec, "91.114.0.0/16", {"91.114.0.0/22"});
        spec.cohorts = {ppp_cohort(11, Duration::hours(24), 0.00086),
                        dhcp_cohort(1, Duration::hours(24), Duration::hours(1000))};
        world.push_back(spec);
    }
    {  // Vodafone GmbH — 9/21 periodic at 24h, rest reconnect-renumbering.
        auto spec = base_isp(3209, "Vodafone GmbH", {"DE"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.35);
        space(spec, "88.64.0.0/16", {"88.64.0.0/22"});
    space(spec, "88.66.0.0/16", {"88.66.0.0/22"});
        spec.cohorts = {ppp_cohort(9, Duration::hours(24), 0.012),
                        ppp_cohort(12, std::nullopt, 0.0)};
        world.push_back(spec);
    }
    {  // Hrvatski Telekom — d=24h, all periodic.
        auto spec = base_isp(5391, "Hrvatski", {"HR"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "93.136.0.0/16", {"93.136.0.0/22"});
        space(spec, "93.137.0.0/16", {"93.137.0.0/22"});
        spec.cohorts = {ppp_cohort(7, Duration::hours(24), 0.0023)};
        world.push_back(spec);
    }
    {  // ISKON — d=24h.
        auto spec = base_isp(13046, "ISKON", {"HR"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "89.164.0.0/16", {"89.164.0.0/22"});
        space(spec, "89.165.0.0/16", {"89.165.0.0/22"});
        spec.cohorts = {ppp_cohort(6, Duration::hours(24), 0.012)};
        world.push_back(spec);
    }
    {  // ANTEL Uruguay — the 12-hour period (South America's 12 h mode).
        auto spec = base_isp(6057, "ANTEL", {"UY"}, Continent::SouthAmerica,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "167.56.0.0/16", {"167.56.0.0/22"});
    space(spec, "167.58.0.0/16", {"167.58.0.0/22"});
        spec.cohorts = {ppp_cohort(6, Duration::hours(12), 0.0015)};
        world.push_back(spec);
    }
    {  // Global Village Telecom Brazil — d=48h, harmonics rare.
        auto spec = base_isp(18881, "Global Village Telecom", {"BR"},
                             Continent::SouthAmerica,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "177.192.0.0/16", {"177.192.0.0/22"});
    space(spec, "177.194.0.0/16", {"177.194.0.0/22"});
        spec.cohorts = {ppp_cohort(6, Duration::hours(48), 0.05)};
        set_outages(spec, busy_outages());
        world.push_back(spec);
    }
    {  // Mauritius Telecom — Africa's 24 h mode.
        auto spec = base_isp(23889, "Mauritius Telecom", {"MU"}, Continent::Africa,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "105.224.0.0/16", {"105.224.0.0/22"});
    space(spec, "105.226.0.0/16", {"105.226.0.0/22"});
        spec.cohorts = {ppp_cohort(5, Duration::hours(24), 0.0044),
                        dhcp_cohort(1, Duration::hours(24), Duration::hours(1000))};
        world.push_back(spec);
    }
    {  // JSC Kazakhtelecom — Asia, 24 h for a third of probes.
        auto spec = base_isp(9198, "JSC Kazakhtelecom", {"KZ"}, Continent::Asia,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "92.46.0.0/16", {"92.46.0.0/22"});
        space(spec, "178.88.0.0/16", {"178.88.0.0/22"});
        spec.cohorts = {ppp_cohort(5, Duration::hours(24), 0.0014),
                        dhcp_cohort(10, Duration::hours(24), Duration::hours(1000))};
        world.push_back(spec);
    }
    {  // Orange Polska — two cohorts: 22 h and 24 h, all persistent.
        auto spec = base_isp(5617, "Orange Polska", {"PL"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "83.4.0.0/16", {"83.4.0.0/22"});
    space(spec, "83.6.0.0/16", {"83.6.0.0/22"});
        spec.cohorts = {ppp_cohort(5, Duration::hours(22), 0.0013),
                        ppp_cohort(5, Duration::hours(24), 0.0019)};
        world.push_back(spec);
    }
    {  // VIPnet — d=92h minority.
        auto spec = base_isp(31012, "VIPnet", {"HR"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "93.138.0.0/16", {"93.138.0.0/22"});
        space(spec, "93.139.0.0/16", {"93.139.0.0/22"});
        spec.cohorts = {ppp_cohort(4, Duration::hours(92), 0.003),
                        dhcp_cohort(3, Duration::hours(24), Duration::hours(1000))};
        world.push_back(spec);
    }
    {  // Digi Tavkozlesi Hungary — weekly.
        auto spec = base_isp(20845, "Digi Tavkozlesi", {"HU"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "94.21.0.0/16", {"94.21.0.0/22"});
        space(spec, "94.22.0.0/16", {"94.22.0.0/22"});
        spec.cohorts = {ppp_cohort(4, Duration::hours(168), 0.0005)};
        world.push_back(spec);
    }
    {  // Free SAS — periodic minority at 24 h over a stable DHCP base.
        auto spec = base_isp(12322, "Free SAS", {"FR"}, Continent::Europe,
                             pool::AllocationStrategy::Sticky, 0.03, 0.50);
        space(spec, "82.224.0.0/16", {"82.224.0.0/22"});
    space(spec, "82.226.0.0/16", {"82.226.0.0/22"});
        spec.cohorts = {ppp_cohort(3, Duration::hours(24), 0.012),
                        dhcp_cohort(9, Duration::hours(24), Duration::hours(900))};
        world.push_back(spec);
    }
    {  // SONATEL — 24 h minority (paper lists it under Europe).
        auto spec = base_isp(8346, "SONATEL-AS", {"SN"}, Continent::Africa,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "41.82.0.0/16", {"41.82.0.0/22"});
        space(spec, "41.83.0.0/16", {"41.83.0.0/22"});
        spec.cohorts = {ppp_cohort(3, Duration::hours(24), 0.003),
                        dhcp_cohort(4, Duration::hours(24), Duration::hours(1000))};
        world.push_back(spec);
    }
    {  // Net by Net Russia — the odd 47 h period.
        auto spec = base_isp(12714, "Net by Net", {"RU"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "89.175.0.0/16", {"89.175.0.0/22"});
        space(spec, "89.176.0.0/16", {"89.176.0.0/22"});
        spec.cohorts = {ppp_cohort(3, Duration::hours(47), 0.0022),
                        dhcp_cohort(4, Duration::hours(24), Duration::hours(1000))};
        world.push_back(spec);
    }
    {  // Telecom Italia — no period, renumbers on outages, widest prefix
       // spread in Table 7 (85 % cross-BGP, only 47 % cross-/8).
        auto spec = base_isp(3269, "Telecom Italia", {"IT"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.05);
        space(spec, "79.0.0.0/16", {"79.0.0.0/22"});
        space(spec, "79.16.0.0/16", {"79.16.0.0/22"});
        space(spec, "79.40.0.0/16", {"79.40.0.0/22"});
        space(spec, "151.20.0.0/16", {"151.20.0.0/22"});
        space(spec, "151.42.0.0/16", {"151.42.0.0/22"});
        space(spec, "151.66.0.0/16", {"151.66.0.0/22"});
        spec.cohorts = {ppp_cohort(28, std::nullopt, 0.0)};
        world.push_back(spec);
    }
    {  // Wind Telecomunicazioni — PPP, outage renumbering.
        auto spec = base_isp(1267, "Wind", {"IT"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.25);
        space(spec, "78.12.0.0/16", {"78.12.0.0/22"});
    space(spec, "78.14.0.0/16", {"78.14.0.0/22"});
        spec.cohorts = {ppp_cohort(12, std::nullopt, 0.0)};
        world.push_back(spec);
    }
    {  // SFR — mixed PPP/DHCP population.
        auto spec = base_isp(15557, "SFR", {"FR"}, Continent::Europe,
                             pool::AllocationStrategy::Sticky, 0.03, 0.45);
        space(spec, "77.192.0.0/16", {"77.192.0.0/22"});
    space(spec, "77.194.0.0/16", {"77.194.0.0/22"});
        spec.cohorts = {ppp_cohort(6, std::nullopt, 0.0),
                        dhcp_cohort(10, Duration::hours(24), Duration::hours(800))};
        world.push_back(spec);
    }
    {  // Comcast — NA stability.
        auto spec = base_isp(7922, "Comcast", {"US"}, Continent::NorthAmerica,
                             pool::AllocationStrategy::Sticky, 0.05, 0.60);
        space(spec, "24.60.0.0/16", {"24.60.0.0/22"});
    space(spec, "24.62.0.0/16", {"24.62.0.0/22"});
        spec.cohorts = {dhcp_cohort(30, Duration::hours(48), Duration::hours(1400))};
        set_outages(spec, quiet_outages());
        world.push_back(spec);
    }
    {  // Ziggo — Dutch cable, stable.
        auto spec = base_isp(9143, "Ziggo", {"NL"}, Continent::Europe,
                             pool::AllocationStrategy::Sticky, 0.04, 0.60);
        space(spec, "62.108.0.0/16", {"62.108.0.0/22"});
        space(spec, "84.24.0.0/16", {"84.24.0.0/22"});
        spec.cohorts = {dhcp_cohort(18, Duration::hours(48), Duration::hours(1100))};
        world.push_back(spec);
    }
    {  // Virgin Media — stable but hops prefixes when it does renumber.
        auto spec = base_isp(5089, "Virgin Media", {"GB"}, Continent::Europe,
                             pool::AllocationStrategy::Sticky, 0.03, 0.05);
        space(spec, "82.16.0.0/16", {"82.16.0.0/22"});
        space(spec, "86.20.0.0/16", {"86.20.0.0/22"});
        space(spec, "94.170.0.0/16", {"94.170.0.0/22"});
        spec.cohorts = {dhcp_cohort(15, Duration::hours(24), Duration::hours(900))};
        world.push_back(spec);
    }
    {  // Kabel Deutschland — the stable German counter-example (Fig 3).
        auto spec = base_isp(31334, "Kabel Deutschland", {"DE"}, Continent::Europe,
                             pool::AllocationStrategy::Sticky, 0.02, 0.70);
        space(spec, "95.88.0.0/16", {"95.88.0.0/22"});
    space(spec, "95.90.0.0/16", {"95.90.0.0/22"});
        spec.cohorts = {dhcp_cohort(20, Duration::hours(24), Duration::hours(1000))};
        world.push_back(spec);
    }
    {  // Kabel BW — likewise stable.
        auto spec = base_isp(29562, "Kabel BW", {"DE"}, Continent::Europe,
                             pool::AllocationStrategy::Sticky, 0.02, 0.70);
        space(spec, "188.192.0.0/16", {"188.192.0.0/22"});
    space(spec, "188.194.0.0/16", {"188.194.0.0/22"});
        spec.cohorts = {dhcp_cohort(8, Duration::hours(24), Duration::hours(1000))};
        world.push_back(spec);
    }
    {  // NetCologne — part of Figure 3's "others" 24 h mode.
        auto spec = base_isp(8422, "NetCologne", {"DE"}, Continent::Europe,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.35);
        space(spec, "78.34.0.0/16", {"78.34.0.0/22"});
        space(spec, "78.35.0.0/16", {"78.35.0.0/22"});
        spec.cohorts = {ppp_cohort(6, Duration::hours(24), 0.003),
                        dhcp_cohort(6, Duration::hours(48), Duration::hours(1000))};
        world.push_back(spec);
    }

    // ---- continental filler so Figure 1 has all six curves ----------------
    {  // AT&T — North America, stable.
        auto spec = base_isp(7018, "AT&T", {"US"}, Continent::NorthAmerica,
                             pool::AllocationStrategy::Sticky, 0.04, 0.60);
        space(spec, "99.104.0.0/16", {"99.104.0.0/22"});
    space(spec, "99.106.0.0/16", {"99.106.0.0/22"});
        spec.cohorts = {dhcp_cohort(25, Duration::hours(48), Duration::hours(1800))};
        set_outages(spec, quiet_outages());
        world.push_back(spec);
    }
    {  // Rogers — Canada, stable.
        auto spec = base_isp(812, "Rogers", {"CA"}, Continent::NorthAmerica,
                             pool::AllocationStrategy::Sticky, 0.04, 0.60);
        space(spec, "99.240.0.0/16", {"99.240.0.0/22"});
    space(spec, "99.242.0.0/16", {"99.242.0.0/22"});
        spec.cohorts = {dhcp_cohort(12, Duration::hours(48), Duration::hours(1600))};
        set_outages(spec, quiet_outages());
        world.push_back(spec);
    }
    {  // Telstra — Oceania, no periodic modes.
        auto spec = base_isp(1221, "Telstra", {"AU"}, Continent::Oceania,
                             pool::AllocationStrategy::Sticky, 0.05, 0.50);
        space(spec, "58.160.0.0/16", {"58.160.0.0/22"});
    space(spec, "58.162.0.0/16", {"58.162.0.0/22"});
        spec.cohorts = {dhcp_cohort(12, Duration::hours(24), Duration::hours(1200))};
        world.push_back(spec);
    }
    {  // Vocus NZ — Oceania.
        auto spec = base_isp(9790, "Vocus NZ", {"NZ"}, Continent::Oceania,
                             pool::AllocationStrategy::Sticky, 0.05, 0.50);
        space(spec, "101.98.0.0/16", {"101.98.0.0/22"});
        space(spec, "101.99.0.0/16", {"101.99.0.0/22"});
        spec.cohorts = {dhcp_cohort(6, Duration::hours(24), Duration::hours(1200))};
        world.push_back(spec);
    }
    {  // Chinanet — Asia: daily periodic minority.
        auto spec = base_isp(4134, "Chinanet", {"CN"}, Continent::Asia,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "114.80.0.0/16", {"114.80.0.0/22"});
    space(spec, "114.82.0.0/16", {"114.82.0.0/22"});
        spec.cohorts = {ppp_cohort(7, Duration::hours(24), 0.003),
                        dhcp_cohort(8, Duration::hours(24), Duration::hours(1000))};
        world.push_back(spec);
    }
    {  // BSNL — Asia: PPP reconnect renumbering, busy outage environment.
        auto spec = base_isp(9829, "BSNL", {"IN"}, Continent::Asia,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.20);
        space(spec, "117.192.0.0/16", {"117.192.0.0/22"});
    space(spec, "117.194.0.0/16", {"117.194.0.0/22"});
        spec.cohorts = {ppp_cohort(12, std::nullopt, 0.0)};
        set_outages(spec, busy_outages());
        world.push_back(spec);
    }
    {  // OCN Japan — Asia: stable.
        auto spec = base_isp(4713, "OCN", {"JP"}, Continent::Asia,
                             pool::AllocationStrategy::Sticky, 0.05, 0.60);
        space(spec, "114.144.0.0/16", {"114.144.0.0/22"});
    space(spec, "114.146.0.0/16", {"114.146.0.0/22"});
        spec.cohorts = {dhcp_cohort(10, Duration::hours(48), Duration::hours(1500))};
        set_outages(spec, quiet_outages());
        world.push_back(spec);
    }
    {  // LINKdotNET Egypt — Africa: daily periodic minority.
        auto spec = base_isp(24863, "LINKdotNET", {"EG"}, Continent::Africa,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "41.32.0.0/16", {"41.32.0.0/22"});
        space(spec, "41.33.0.0/16", {"41.33.0.0/22"});
        spec.cohorts = {ppp_cohort(4, Duration::hours(24), 0.004),
                        dhcp_cohort(4, Duration::hours(24), Duration::hours(1000))};
        set_outages(spec, busy_outages());
        world.push_back(spec);
    }
    {  // Telkom SA — Africa.
        auto spec = base_isp(5713, "Telkom SA", {"ZA"}, Continent::Africa,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "41.144.0.0/16", {"41.144.0.0/22"});
    space(spec, "41.146.0.0/16", {"41.146.0.0/22"});
        spec.cohorts = {ppp_cohort(8, std::nullopt, 0.0)};
        set_outages(spec, busy_outages());
        world.push_back(spec);
    }
    {  // Oi/Telemar Brazil — South America: reconnect renumbering.
        auto spec = base_isp(7738, "Telemar", {"BR"}, Continent::SouthAmerica,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.25);
        space(spec, "179.208.0.0/16", {"179.208.0.0/22"});
    space(spec, "179.210.0.0/16", {"179.210.0.0/22"});
        spec.cohorts = {ppp_cohort(10, std::nullopt, 0.0)};
        set_outages(spec, busy_outages());
        world.push_back(spec);
    }
    {  // Telefonica Argentina — South America's odd 28 h mode.
        auto spec = base_isp(22927, "Telefonica AR", {"AR"},
                             Continent::SouthAmerica,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "190.16.0.0/16", {"190.16.0.0/22"});
        space(spec, "190.17.0.0/16", {"190.17.0.0/22"});
        spec.cohorts = {ppp_cohort(5, Duration::hours(28), 0.002),
                        dhcp_cohort(5, Duration::hours(24), Duration::hours(1000))};
        world.push_back(spec);
    }
    {  // Entel Chile — South America's 8-day (192 h) mode.
        auto spec = base_isp(6471, "Entel Chile", {"CL"}, Continent::SouthAmerica,
                             pool::AllocationStrategy::RandomSpread, 0.0, 0.30);
        space(spec, "190.96.0.0/16", {"190.96.0.0/22"});
        space(spec, "190.97.0.0/16", {"190.97.0.0/22"});
        spec.cohorts = {ppp_cohort(3, Duration::hours(192), 0.002),
                        dhcp_cohort(3, Duration::hours(48), Duration::hours(1000))};
        world.push_back(spec);
    }
    return world;
}

SpecialMix paper_specials() {
    SpecialMix mix;
    mix.never_changed = 307;
    mix.dual_stack = 373;
    mix.ipv6_only = 24;
    mix.tagged_alternating = 4;
    mix.tagged_stable = 13;
    mix.untagged_alternating = 51;
    mix.testing_then_stable = 22;
    return mix;
}

std::vector<net::TimePoint> firmware_releases_2015() {
    return {net::TimePoint::from_date(2015, 1, 25),
            net::TimePoint::from_date(2015, 3, 23),
            net::TimePoint::from_date(2015, 4, 14),
            net::TimePoint::from_date(2015, 7, 6),
            net::TimePoint::from_date(2015, 10, 5)};
}

ScenarioConfig paper_scenario() {
    ScenarioConfig config;
    config.isps = paper_world();
    config.specials = paper_specials();
    config.cross_as_movers = 77;
    config.firmware_releases = firmware_releases_2015();
    config.kroot = std::nullopt;
    config.seed = 20151231;
    return config;
}

ScenarioConfig outage_scenario() {
    ScenarioConfig config;
    const std::vector<std::uint32_t> wanted = {3215, 3320, 2856, 6830, 701,
                                               3269, 5432, 3209, 1267, 15557,
                                               13046, 8997, 7922, 9143, 31334,
                                               12322};
    for (auto& isp : paper_world()) {
        bool keep = false;
        for (auto asn : wanted) keep = keep || isp.asn == asn;
        if (!keep) continue;
        set_outages(isp, busy_outages());
        config.isps.push_back(std::move(isp));
    }
    config.firmware_releases = firmware_releases_2015();
    atlas::KRootSamplingPolicy kroot;
    kroot.base_cadence = net::Duration::hours(4);
    kroot.dense_window = net::Duration::minutes(16);
    config.kroot = kroot;
    config.seed = 20160101;
    return config;
}

ScenarioConfig quick_scenario() {
    ScenarioConfig config;
    config.window = {net::TimePoint::from_date(2015, 1, 1),
                     net::TimePoint::from_date(2015, 3, 1)};
    auto shrink = [](IspSpec spec, int probes) {
        spec.cohorts.resize(1);
        spec.cohorts.front().probe_count = probes;
        return spec;
    };
    config.isps = {shrink(orange(), 8), shrink(dtag(), 8), shrink(lgi(), 8),
                   shrink(verizon(), 6)};
    for (auto& isp : config.isps) set_outages(isp, busy_outages());
    // Two months is short for LGI's gentle churn to produce any change at
    // all; raise churn and fatten the outage tail so the smoke scenario
    // exercises DHCP renumbering too.
    config.isps[2].churn_per_hour = 0.3;
    for (auto& cohort : config.isps[2].cohorts) {
        cohort.outages.power_per_year = 14.0;
        cohort.outages.net_per_year = 22.0;
        cohort.outages.short_fraction = 0.4;
        cohort.outages.long_median_seconds = 4.0 * 3600.0;
    }
    config.specials.never_changed = 4;
    config.specials.dual_stack = 4;
    config.specials.ipv6_only = 2;
    config.specials.untagged_alternating = 3;
    config.specials.tagged_stable = 2;
    config.specials.testing_then_stable = 2;
    config.cross_as_movers = 2;
    config.firmware_releases = {net::TimePoint::from_date(2015, 1, 25)};
    atlas::KRootSamplingPolicy kroot;
    kroot.base_cadence = net::Duration::seconds(240);
    kroot.dense_cadence = net::Duration::seconds(240);
    config.kroot = kroot;
    config.seed = 7;
    return config;
}

ScenarioConfig scaled_scenario(ScenarioConfig base, int factor) {
    if (factor < 1) throw Error("scale factor must be >= 1");
    if (factor == 1) return base;
    // k-root off: at the quick preset's 240 s cadence a 100k-CPE
    // population would emit billions of ping records — the capacity run
    // measures the lease/event/log planes, not the k-root emitter.
    base.kroot.reset();
    for (std::size_t i = 0; i < base.isps.size(); ++i) {
        IspSpec& isp = base.isps[i];
        std::int64_t probes = 0;
        for (auto& cohort : isp.cohorts) {
            cohort.probe_count *= factor;
            probes += cohort.probe_count;
        }
        // Replace the preset's small address blocks with one synthetic
        // wide block per ISP, sized to ~4x the scaled population so
        // allocation behaves like a normally-provisioned pool rather than
        // an exhaustion run. Blocks are disjoint across ISPs by
        // construction (one /8 each, from 20.0.0.0 up).
        int host_bits = 8;
        while ((std::int64_t(1) << host_bits) < probes * 4 && host_bits < 24)
            ++host_bits;
        const net::IPv4Address block_base{std::uint32_t(20 + i) << 24};
        isp.pool_prefixes = {net::IPv4Prefix(block_base, 32 - host_bits)};
        isp.announced_prefixes = {net::IPv4Prefix(block_base, 8)};
        // Admin renumbering events index the preset's pool list, which no
        // longer exists; a single-block pool has nothing to retire into.
        isp.admin_events.clear();
    }
    return base;
}

}  // namespace dynaddr::isp::presets

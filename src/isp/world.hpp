#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "atlas/binary_bundle.hpp"
#include "atlas/cpe.hpp"
#include "atlas/datasets.hpp"
#include "atlas/kroot.hpp"
#include "atlas/special_probes.hpp"
#include "atlas/timeline.hpp"
#include "bgp/as_registry.hpp"
#include "bgp/prefix_table.hpp"
#include "isp/outage_model.hpp"
#include "ppp/radius.hpp"
#include "sim/faults.hpp"

namespace dynaddr::isp {

/// A homogeneous subset of one ISP's subscribers: same access protocol,
/// same session policy, same outage environment. Several cohorts let one
/// AS mix behaviours (e.g. BT's mostly-nonperiodic population with a
/// 2-week-periodic minority, or Proximus' 36 h and 24 h groups).
struct Cohort {
    int probe_count = 5;
    atlas::CpeConfig::Wan protocol = atlas::CpeConfig::Wan::Dhcp;

    // -- PPP / RADIUS -------------------------------------------------------
    /// Session-Timeout: the periodic renumbering period d. nullopt = no
    /// periodic limit (sessions run until an outage or reconnect).
    std::optional<net::Duration> session_timeout;
    /// Probability a timeout cycle is skipped (harmonic durations at 2d, 3d).
    double skip_renumber_probability = 0.08;
    /// Fraction of CPEs with the nightly privacy reconnect feature.
    double fraction_nightly_reconnect = 0.0;
    int nightly_hour_min = 0;  ///< UTC hour range the CPE reconnect lands in
    int nightly_hour_max = 5;

    // -- DHCP ---------------------------------------------------------------
    net::Duration dhcp_lease = net::Duration::hours(12);
    /// Administrative cap on continuous address tenure. With jitter this
    /// yields the weeks-scale, mode-free renumbering of stable ISPs.
    std::optional<net::Duration> dhcp_max_age;
    double dhcp_max_age_jitter = 0.0;
    /// Lease-expiry sweep granularity (see ServerConfig::expiry_sweep_quantum).
    /// The 1 s default is exact for whole-second simulation time.
    net::Duration dhcp_sweep_quantum = net::Duration::seconds(1);

    // -- hardware & environment --------------------------------------------
    /// Fraction of probes that are v1/v2 hardware (excluded from the
    /// paper's power analysis).
    double v1v2_fraction = 0.10;
    OutageRates outages;
};

/// An administrative renumbering: at `when` the ISP retires one pool
/// block (its DHCP servers NAK every lease on it at the next renewal) and
/// brings a previously-unused block into service. The retired block's
/// aggregate disappears from the following month's IP-to-AS snapshot; the
/// new one appears from its first month of use. Only meaningful for DHCP
/// cohorts (PPP sessions drain naturally).
struct AdminRenumbering {
    net::TimePoint when;
    std::size_t retire_pool_index = 0;  ///< index into pool_prefixes
    std::size_t enable_pool_index = 0;  ///< index into pool_prefixes
};

/// One autonomous system: identity, address space, allocation behaviour,
/// and its subscriber cohorts.
struct IspSpec {
    std::uint32_t asn = 0;
    std::string name;
    /// Countries its probes are drawn from (uniformly). Usually one;
    /// pan-European ISPs like Liberty Global list several.
    std::vector<std::string> countries;
    bgp::Continent continent = bgp::Continent::Europe;
    /// Small blocks subscriber addresses are actually drawn from.
    std::vector<net::IPv4Prefix> pool_prefixes;
    /// BGP-announced aggregates; every pool prefix must lie inside exactly
    /// one. Aggregates larger than /16 make /16-crossing exceed
    /// BGP-crossing, as in the paper's Table 7 (e.g. BT).
    std::vector<net::IPv4Prefix> announced_prefixes;
    pool::AllocationStrategy strategy = pool::AllocationStrategy::RandomSpread;
    double churn_per_hour = 0.02;
    double locality_bias = 0.0;
    std::vector<Cohort> cohorts;
    std::vector<AdminRenumbering> admin_events;
};

/// Populations of probes exhibiting the behaviours the paper's Table 2
/// filters out. Counts are whatever scale the experiment wants.
struct SpecialMix {
    int never_changed = 0;
    int dual_stack = 0;
    int ipv6_only = 0;
    int tagged_alternating = 0;   ///< tagged AND behaviourally multihomed
    int tagged_stable = 0;        ///< tagged, stable address
    int untagged_alternating = 0; ///< behaviourally multihomed, no tag
    int testing_then_stable = 0;  ///< first connection from 193.0.0.78
};

/// Full description of one simulated world.
struct ScenarioConfig {
    net::TimeInterval window{net::TimePoint::from_date(2015, 1, 1),
                             net::TimePoint::from_date(2016, 1, 1)};
    std::vector<IspSpec> isps;
    SpecialMix specials;
    /// Probes that physically move to a different ISP mid-year (paper's
    /// "Multiple ASes" row); they cycle through consecutive ISP pairs.
    int cross_as_movers = 0;
    std::vector<net::TimePoint> firmware_releases;
    /// k-root emission policy; nullopt skips the dataset entirely (cheap
    /// runs for experiments that only need connection logs).
    std::optional<atlas::KRootSamplingPolicy> kroot;
    std::uint64_t seed = 2015;
    /// Deterministic fault plan for this run. Unset (the default) means no
    /// injector is created and every fault gate is a null check, so
    /// fingerprints match a fault-free build byte for byte. When the CLI
    /// has already installed a process-global injector, that one wins and
    /// this field is ignored.
    std::optional<sim::FaultPlan> faults;
    /// Optional streaming dataset sink (e.g. atlas::BinaryBundleWriter).
    /// Connection/uptime records tee into it live as the simulation emits
    /// them; k-root pings, special-probe logs and probe metadata follow at
    /// scrape time. The caller owns the sink (and closes it) after
    /// run_scenario returns; the in-memory bundle is still produced.
    atlas::BundleSink* bundle_sink = nullptr;
};

/// Ground truth about one probe, for validation; never fed to analysis.
struct ProbeTruth {
    atlas::ProbeId probe = 0;
    std::uint32_t asn = 0;  ///< 0 for special probes
    int cohort = -1;
    atlas::CpeConfig::Wan protocol = atlas::CpeConfig::Wan::Dhcp;
    std::optional<net::Duration> configured_period;
    std::vector<PlannedOutage> outages;
    bool special = false;
    bool mover = false;
    std::uint32_t mover_second_asn = 0;
};

/// Everything a scenario run yields.
struct ScenarioResult {
    atlas::DatasetBundle bundle;       ///< what the paper's authors had
    bgp::AsRegistry registry;          ///< public AS metadata
    bgp::PrefixTable prefix_table;     ///< pfx2as equivalent
    std::vector<atlas::Timeline> timelines;  ///< ground truth
    std::vector<ProbeTruth> truths;          ///< ground truth
    std::map<std::uint32_t, std::vector<ppp::AccountingRecord>> radius_records;
    std::uint64_t sim_events = 0;
};

/// Builds the world, runs the simulation over the window, emits datasets.
ScenarioResult run_scenario(const ScenarioConfig& config);

}  // namespace dynaddr::isp

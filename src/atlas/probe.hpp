#pragma once

#include <optional>

#include "atlas/datasets.hpp"
#include "atlas/timeline.hpp"
#include "netcore/rng.hpp"
#include "sim/simulation.hpp"

namespace dynaddr::atlas {

class Controller;

/// Delay and behaviour parameters of the probe device model.
struct ProbeConfig {
    ProbeId id = 0;
    ProbeVersion version = ProbeVersion::V3;
    /// Probability that establishing a new TCP connection reboots a v1/v2
    /// probe (the memory-fragmentation bug the paper cites). Ignored on v3.
    double frag_reboot_probability = 0.25;
    /// Boot duration bounds (power-on to measurements running).
    net::Duration boot_min = net::Duration::seconds(60);
    net::Duration boot_max = net::Duration::seconds(180);
    /// TCP retransmission-exhaustion bounds: how long a broken connection
    /// lingers before the probe gives up and reconnects (RFC 1122
    /// §4.2.3.5; the paper observes 15-25 minutes).
    net::Duration tcp_timeout_min = net::Duration::seconds(900);
    net::Duration tcp_timeout_max = net::Duration::seconds(1500);
    /// The logged end of a connection is the last receipt of data, up to
    /// one reporting interval (~3 min) before the break.
    net::Duration end_jitter_max = net::Duration::seconds(180);
    /// Delay between the WAN becoming usable and the new connection.
    net::Duration reconnect_jitter_max = net::Duration::seconds(120);
    /// Extra downtime when a reboot installs a firmware update.
    net::Duration firmware_install_min = net::Duration::seconds(120);
    net::Duration firmware_install_max = net::Duration::seconds(300);
};

/// The RIPE Atlas probe device.
///
/// Runs behind a CPE, holds one SSH-over-TCP connection to the central
/// controller, reports its uptime counter on every new connection, and
/// reboots for the reasons the paper catalogues (power fate-sharing,
/// firmware installs, v1/v2 memory fragmentation). Connection-log and
/// uptime records are pushed to the Controller; ground truth goes to the
/// Timeline.
class Probe {
public:
    /// All references must outlive the probe.
    Probe(ProbeConfig config, sim::Simulation& sim, rng::Stream rng,
          Controller& controller, Timeline& timeline);

    Probe(const Probe&) = delete;
    Probe& operator=(const Probe&) = delete;

    /// Power applied (USB from the CPE, or mains at first install).
    void power_on(RebootCause cause);

    /// Power removed. Breaks any connection and marks the probe down.
    void power_off();

    /// The CPE's usable WAN address changed: an address when connectivity
    /// exists end-to-end, nullopt when the link/session/power is down.
    void wan_update(std::optional<PeerAddress> address);

    /// Controller released a firmware image: install at the next
    /// connection break (paper §5.2).
    void firmware_released();

    /// Controller-side nudge for probes that never broke a connection:
    /// install now.
    void force_firmware_install();

    /// End of the observation window: records the live connection (if any)
    /// with `end` as its last-data time, the way a log scrape sees a
    /// still-open connection. Probe state is left untouched.
    void flush_open_connection(net::TimePoint end);

    [[nodiscard]] bool connected() const { return connection_.has_value(); }
    [[nodiscard]] bool running() const { return state_ == State::Running; }
    [[nodiscard]] ProbeId id() const { return config_.id; }
    [[nodiscard]] const ProbeConfig& config() const { return config_; }

private:
    enum class State { Off, Booting, Running };

    struct Connection {
        net::TimePoint start;
        PeerAddress address;
    };

    void begin_boot(RebootCause cause, bool installing_firmware);
    void finish_boot();
    void reboot(RebootCause cause);
    /// Closes the live connection, logging its end at `last_data`.
    void close_connection(net::TimePoint last_data);
    void begin_impairment();
    void clear_impairment();
    void on_tcp_give_up();
    void schedule_connect_attempt();
    void try_connect();
    [[nodiscard]] net::Duration draw(net::Duration lo, net::Duration hi);

    ProbeConfig config_;
    sim::Simulation* sim_;
    rng::Stream rng_;
    Controller* controller_;
    Timeline* timeline_;

    State state_ = State::Off;
    std::optional<PeerAddress> wan_;
    std::optional<Connection> connection_;
    std::optional<net::TimePoint> impaired_since_;
    std::optional<sim::EventId> give_up_event_;
    std::optional<sim::EventId> connect_event_;
    std::optional<sim::EventId> boot_event_;
    std::optional<sim::EventId> frag_event_;
    net::TimePoint last_boot_{};
    bool pending_firmware_ = false;
};

}  // namespace dynaddr::atlas

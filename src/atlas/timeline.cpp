#include "atlas/timeline.hpp"

#include <algorithm>

#include "netcore/error.hpp"

namespace dynaddr::atlas {

void Timeline::set_address(net::TimePoint t, PeerAddress address) {
    if (finalized_) throw Error("timeline is finalized");
    if (open_epoch_address_ && *open_epoch_address_ == address) return;
    clear_address(t);
    open_epoch_start_ = t;
    open_epoch_address_ = address;
}

void Timeline::clear_address(net::TimePoint t) {
    if (finalized_) throw Error("timeline is finalized");
    if (!open_epoch_start_) return;
    if (t > *open_epoch_start_)
        epochs_.push_back({{*open_epoch_start_, t}, *open_epoch_address_});
    open_epoch_start_.reset();
    open_epoch_address_.reset();
}

void Timeline::probe_down_begin(net::TimePoint t) {
    if (finalized_) throw Error("timeline is finalized");
    if (!open_probe_down_) open_probe_down_ = t;
}

void Timeline::probe_down_end(net::TimePoint t) {
    if (finalized_) throw Error("timeline is finalized");
    if (!open_probe_down_) return;
    if (t > *open_probe_down_) probe_down_.push_back({*open_probe_down_, t});
    open_probe_down_.reset();
}

void Timeline::net_down_begin(net::TimePoint t) {
    if (finalized_) throw Error("timeline is finalized");
    if (!open_net_down_) open_net_down_ = t;
}

void Timeline::net_down_end(net::TimePoint t) {
    if (finalized_) throw Error("timeline is finalized");
    if (!open_net_down_) return;
    if (t > *open_net_down_) net_down_.push_back({*open_net_down_, t});
    open_net_down_.reset();
}

void Timeline::record_boot(net::TimePoint t, RebootCause cause) {
    if (finalized_) throw Error("timeline is finalized");
    boots_.push_back({t, cause});
}

void Timeline::finalize(net::TimePoint end) {
    if (finalized_) return;
    clear_address(end);
    probe_down_end(end);
    net_down_end(end);
    finalized_ = true;
}

bool Timeline::in_any(const std::vector<net::TimeInterval>& intervals,
                      net::TimePoint t) {
    // Intervals are appended in time order and never overlap.
    auto it = std::upper_bound(
        intervals.begin(), intervals.end(), t,
        [](net::TimePoint v, const net::TimeInterval& ivl) { return v < ivl.begin; });
    if (it == intervals.begin()) return false;
    return std::prev(it)->contains(t);
}

bool Timeline::probe_up(net::TimePoint t) const { return !in_any(probe_down_, t); }

bool Timeline::net_up(net::TimePoint t) const { return !in_any(net_down_, t); }

std::optional<PeerAddress> Timeline::address_at(net::TimePoint t) const {
    auto it = std::upper_bound(
        epochs_.begin(), epochs_.end(), t,
        [](net::TimePoint v, const AddressEpoch& e) { return v < e.when.begin; });
    if (it == epochs_.begin()) return std::nullopt;
    const auto& epoch = *std::prev(it);
    if (!epoch.when.contains(t)) return std::nullopt;
    return epoch.address;
}

bool Timeline::communicable(net::TimePoint t) const {
    return probe_up(t) && net_up(t) && address_at(t).has_value();
}

std::vector<net::TimePoint> Timeline::event_times() const {
    std::vector<net::TimePoint> times;
    for (const auto& e : epochs_) {
        times.push_back(e.when.begin);
        times.push_back(e.when.end);
    }
    for (const auto& ivl : probe_down_) {
        times.push_back(ivl.begin);
        times.push_back(ivl.end);
    }
    for (const auto& ivl : net_down_) {
        times.push_back(ivl.begin);
        times.push_back(ivl.end);
    }
    for (const auto& boot : boots_) times.push_back(boot.at);
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());
    return times;
}

std::vector<Timeline::AddressChange> Timeline::address_changes() const {
    std::vector<AddressChange> changes;
    for (std::size_t i = 1; i < epochs_.size(); ++i) {
        if (epochs_[i].address == epochs_[i - 1].address) continue;
        changes.push_back(
            {epochs_[i].when.begin, epochs_[i - 1].address, epochs_[i].address});
    }
    return changes;
}

}  // namespace dynaddr::atlas

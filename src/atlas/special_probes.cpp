#include "atlas/special_probes.hpp"

#include <algorithm>

#include "netcore/error.hpp"
#include "netcore/rng.hpp"

namespace dynaddr::atlas {

namespace {

/// Draws the next connection length, at least 10 minutes.
net::Duration draw_session(const SpecialProbeSpec& spec, rng::Stream& rng) {
    const double seconds = rng.exponential(double(spec.mean_session.count()));
    return net::Duration{std::max<std::int64_t>(600, std::int64_t(seconds))};
}

/// Typical inter-connection gap: TCP retransmission exhaustion.
net::Duration draw_gap(rng::Stream& rng) {
    return net::Duration{rng.uniform_int(900, 1500)};
}

}  // namespace

std::vector<ConnectionLogEntry> generate_special_probe_log(
    const SpecialProbeSpec& spec, net::TimeInterval window, rng::Stream rng) {
    if (window.empty()) throw Error("empty generation window");
    std::vector<ConnectionLogEntry> log;

    const PeerAddress fixed = PeerAddress::ipv4(spec.base_address);
    // A second, slowly-changing address for multihomed/dual-stack probes:
    // derived from the base with a rotating low byte.
    auto rotating_v4 = [&](int generation) {
        return PeerAddress::ipv4(
            net::IPv4Address{spec.base_address.value() + 0x10000u +
                             std::uint32_t(generation)});
    };
    // The probe's delegated /64 and its IPv6 address at time t: a stable
    // EUI-64-style interface id, or a daily-rotating temporary one when
    // privacy extensions are on (RFC 4941 default temporary preferred
    // lifetime is one day).
    const std::uint64_t v6_net =
        0x20010db800000000ULL | (std::uint64_t(spec.id) << 16);
    auto v6_at = [&](net::TimePoint t) {
        std::uint64_t iid = 0x020000fffe000000ULL | spec.id;
        if (spec.v6_privacy_extensions) {
            const int day = int((t - window.begin).count() / 86400);
            std::uint64_t state =
                (std::uint64_t(spec.id) << 32) ^ std::uint64_t(day) ^
                0x6a09e667f3bcc908ULL;
            iid = rng::splitmix64(state);
        }
        return PeerAddress::ipv6(net::IPv6Address{v6_net, iid});
    };

    net::TimePoint t = window.begin;
    int connection_index = 0;
    int generation = 0;
    bool first = true;
    const bool rotating_v6 =
        spec.v6_privacy_extensions &&
        (spec.behaviour == SpecialBehaviour::DualStack ||
         spec.behaviour == SpecialBehaviour::Ipv6Only);
    while (t < window.end) {
        const net::Duration session = draw_session(spec, rng);
        net::TimePoint end = t + session;
        if (end > window.end) end = window.end;
        if (rotating_v6) {
            // A temporary address dies at the next local-day boundary
            // (RFC 4941 daily regeneration), taking its connection along.
            const std::int64_t day_end =
                window.begin.unix_seconds() +
                ((t - window.begin).count() / 86400 + 1) * 86400;
            end = std::min(end, net::TimePoint{day_end});
        }

        PeerAddress address = fixed;
        switch (spec.behaviour) {
            case SpecialBehaviour::NeverChanged:
                address = fixed;
                break;
            case SpecialBehaviour::DualStack:
                // Alternate families with occasional repeats; v4 rotates
                // roughly daily underneath.
                generation = int((t - window.begin).count() / 86400);
                address = rng.bernoulli(0.5) ? rotating_v4(generation)
                                             : v6_at(t);
                break;
            case SpecialBehaviour::Ipv6Only:
                address = v6_at(t);
                break;
            case SpecialBehaviour::MultihomedAlternating:
                // Strict alternation: fixed, rotating, fixed, rotating...
                generation = int((t - window.begin).count() / (7 * 86400));
                address = connection_index % 2 == 0 ? fixed : rotating_v4(generation);
                break;
            case SpecialBehaviour::TestingAddressThenStable:
                if (first) {
                    // Short burn-in connection from the RIPE testing
                    // address before the probe ships.
                    end = t + net::Duration::hours(2);
                    address = PeerAddress::ipv4(testing_address());
                } else {
                    address = fixed;
                }
                break;
        }

        log.push_back({spec.id, t, end, address});
        ++connection_index;
        first = false;
        t = end + draw_gap(rng);
    }
    return log;
}

}  // namespace dynaddr::atlas

#pragma once

#include <vector>

#include "atlas/binary_bundle.hpp"
#include "atlas/datasets.hpp"
#include "netcore/obs/memaccount.hpp"
#include "netcore/rng.hpp"
#include "sim/simulation.hpp"

namespace dynaddr::atlas {

class Probe;

/// The RIPE Atlas central controller.
///
/// Collects connection-log and uptime records from registered probes and
/// distributes firmware releases. A release marks every probe
/// pending-install (installed at its next natural connection break); a
/// per-probe forced install at release + U(force_min, force_max) catches
/// probes whose connections never break, which spreads installs over the
/// 2-3 day spikes visible in the paper's Figure 6.
class Controller {
public:
    explicit Controller(sim::Simulation& sim, rng::Stream rng);

    /// Registers a probe for firmware pushes. The probe must outlive the
    /// controller's scheduled events.
    void register_probe(Probe& probe);

    /// Schedules a firmware release at `release` (absolute time).
    void schedule_firmware_release(net::TimePoint release);

    /// Bounds for the forced-install nudge after a release.
    void set_force_window(net::Duration min, net::Duration max);

    // -- record sinks (called by probes) -----------------------------------
    void record_connection(const ConnectionLogEntry& entry);
    void record_uptime(const UptimeRecord& record);

    /// Tees every recorded connection/uptime record into `sink` as it
    /// happens (nullptr clears). A streaming BinaryBundleWriter installed
    /// here flushes columnar blocks to disk while the simulation runs,
    /// instead of waiting for the post-run drain. The sink must outlive
    /// the controller's recording.
    void set_sink(BundleSink* sink) { sink_ = sink; }

    [[nodiscard]] const std::vector<ConnectionLogEntry>& connection_log() const {
        return connection_log_;
    }
    [[nodiscard]] const std::vector<UptimeRecord>& uptime_records() const {
        return uptime_records_;
    }
    [[nodiscard]] const std::vector<net::TimePoint>& firmware_releases() const {
        return releases_;
    }

    /// Moves the collected records into a bundle (leaves this empty).
    void drain_into(DatasetBundle& bundle);

private:
    void release_firmware(net::TimePoint when);

    sim::Simulation* sim_;
    rng::Stream rng_;
    std::vector<Probe*> probes_;
    std::vector<ConnectionLogEntry> connection_log_;
    std::vector<UptimeRecord> uptime_records_;
    std::vector<net::TimePoint> releases_;
    net::Duration force_min_ = net::Duration::hours(12);
    net::Duration force_max_ = net::Duration::hours(60);
    BundleSink* sink_ = nullptr;
    /// Capacity accounting (mem.atlas.dataset_buffers): the centrally
    /// buffered connection/uptime records — the dominant growth of a
    /// non-streaming run — published amortized from the record sinks.
    void note_mem_op() {
        if ((++mem_ops_ & 1023) == 0) publish_mem();
    }
    void publish_mem() {
        mem_.report(connection_log_.capacity() * sizeof(ConnectionLogEntry) +
                        uptime_records_.capacity() * sizeof(UptimeRecord),
                    connection_log_.size() + uptime_records_.size());
    }
    std::size_t mem_ops_ = 0;
    obs::MemRegistration mem_{"atlas.dataset_buffers"};
};

}  // namespace dynaddr::atlas

#include "atlas/controller.hpp"

#include <utility>

#include "atlas/probe.hpp"
#include "netcore/error.hpp"

namespace dynaddr::atlas {

Controller::Controller(sim::Simulation& sim, rng::Stream rng)
    : sim_(&sim), rng_(rng) {}

void Controller::register_probe(Probe& probe) { probes_.push_back(&probe); }

void Controller::schedule_firmware_release(net::TimePoint release) {
    releases_.push_back(release);
    sim_->at(release, [this](net::TimePoint when) { release_firmware(when); });
}

void Controller::set_force_window(net::Duration min, net::Duration max) {
    if (max < min) throw Error("force window max < min");
    force_min_ = min;
    force_max_ = max;
}

void Controller::record_connection(const ConnectionLogEntry& entry) {
    connection_log_.push_back(entry);
    if (sink_ != nullptr) sink_->add_connection(entry);
    note_mem_op();
}

void Controller::record_uptime(const UptimeRecord& record) {
    uptime_records_.push_back(record);
    if (sink_ != nullptr) sink_->add_uptime(record);
    note_mem_op();
}

void Controller::drain_into(DatasetBundle& bundle) {
    bundle.connection_log.insert(bundle.connection_log.end(),
                                 connection_log_.begin(), connection_log_.end());
    bundle.uptime_records.insert(bundle.uptime_records.end(),
                                 uptime_records_.begin(), uptime_records_.end());
    connection_log_.clear();
    uptime_records_.clear();
    publish_mem();
}

void Controller::release_firmware(net::TimePoint) {
    for (Probe* probe : probes_) {
        probe->firmware_released();
        const net::Duration nudge{
            rng_.uniform_int(force_min_.count(), force_max_.count())};
        sim_->after(nudge, [probe](net::TimePoint) {
            probe->force_firmware_install();
        });
    }
}

}  // namespace dynaddr::atlas

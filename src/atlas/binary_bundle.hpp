#pragma once

// Columnar binary dataset bundle ("DAB2"), the I/O-bound companion to the
// CSV bundle. One .dab file per dataset, same base names as the CSV side
// (connection_log.dab, ...). Layout per file:
//
//   header   "DAB2" | kind u8 | format u8
//   blocks   repeated: varint probe | varint count | columnar payload
//   footer   address dictionary (connection log only; empty elsewhere)
//            + block index: per block (varint probe, varint offset delta,
//              varint count), in file order
//   tail     u64 LE footer offset | "DABE"  (fixed 12 bytes)
//
// Columns are delta-varint timestamps (zigzag start deltas, zigzag
// durations) and dictionary-coded peer addresses, cutting the connection
// log to a fraction of its CSV size. Blocks hold at most `block_records`
// records of ONE probe, so the footer index supports per-probe reads: the
// streaming analysis path walks probes in ascending id order touching
// O(block) bytes at a time, and shards can divide the probe space without
// parsing each other's blocks.
//
// Record order within a probe is preserved exactly (blocks in file order,
// records in block order), so CSV -> binary -> CSV round-trips bundles
// written per-probe sorted (DatasetBundle::sort(), the simulator's output
// and `dynaddr convert` both qualify) byte-identically.
//
// Lenient decoding (fault-garbled input) drops the offending block,
// counts its rows as rejected — the binary analogue of the CSV readers'
// faults.csv.rows_rejected — and resumes at the next indexed block.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "atlas/datasets.hpp"

namespace dynaddr::atlas {

/// Push-based consumer of dataset records. The simulator's controller
/// emits into one of these when installed, letting the binary writer
/// persist records as they happen instead of buffering a whole
/// DatasetBundle in memory first.
class BundleSink {
public:
    virtual ~BundleSink() = default;
    virtual void add_connection(const ConnectionLogEntry& entry) = 0;
    virtual void add_kroot(const KRootPingRecord& record) = 0;
    virtual void add_uptime(const UptimeRecord& record) = 0;
    virtual void add_probe(const ProbeMetadata& meta) = 0;
};

/// Streaming writer: appends records into per-probe columnar blocks,
/// flushing a block to disk when it reaches `block_records` records or
/// the incoming probe id changes. close() (or destruction) writes the
/// footers; a writer left unclosed by an exception leaves truncated but
/// detectably-invalid files (no tail magic).
class BinaryBundleWriter final : public BundleSink {
public:
    explicit BinaryBundleWriter(const std::string& directory,
                                std::size_t block_records = 512);
    ~BinaryBundleWriter() override;
    BinaryBundleWriter(const BinaryBundleWriter&) = delete;
    BinaryBundleWriter& operator=(const BinaryBundleWriter&) = delete;

    void add_connection(const ConnectionLogEntry& entry) override;
    void add_kroot(const KRootPingRecord& record) override;
    void add_uptime(const UptimeRecord& record) override;
    void add_probe(const ProbeMetadata& meta) override;

    /// Flushes pending blocks and writes footer + tail on every dataset
    /// file. Idempotent; throws Error on I/O failure.
    void close();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Decode-side tallies (lenient mode).
struct BinaryDecodeStats {
    std::size_t rows_rejected = 0;    ///< records inside rejected blocks
    std::size_t blocks_rejected = 0;  ///< blocks dropped for parse errors
};

// -- in-memory single-dataset codecs ----------------------------------------
// The encoded string IS the .dab file body; the file paths below are thin
// wrappers. Exposed for the fuzz harness and the microbenchmarks.

std::string encode_connection_log_binary(
    std::span<const ConnectionLogEntry> entries,
    std::size_t block_records = 512);
std::string encode_kroot_binary(std::span<const KRootPingRecord> records,
                                std::size_t block_records = 512);
std::string encode_uptime_binary(std::span<const UptimeRecord> records,
                                 std::size_t block_records = 512);
std::string encode_probes_binary(std::span<const ProbeMetadata> probes,
                                 std::size_t block_records = 512);

/// Strict mode throws ParseError on the first malformed byte; lenient
/// mode skips bad blocks via the footer index and tallies into `stats`.
std::vector<ConnectionLogEntry> decode_connection_log_binary(
    std::string_view data, bool lenient = false,
    BinaryDecodeStats* stats = nullptr);
std::vector<KRootPingRecord> decode_kroot_binary(
    std::string_view data, bool lenient = false,
    BinaryDecodeStats* stats = nullptr);
std::vector<UptimeRecord> decode_uptime_binary(
    std::string_view data, bool lenient = false,
    BinaryDecodeStats* stats = nullptr);
std::vector<ProbeMetadata> decode_probes_binary(
    std::string_view data, bool lenient = false,
    BinaryDecodeStats* stats = nullptr);

// -- whole-bundle file I/O ---------------------------------------------------

/// Writes all four datasets as .dab files (directory created if needed).
void write_binary_bundle(const std::string& directory,
                         const DatasetBundle& bundle,
                         std::size_t block_records = 512);

/// Reads a binary bundle. Strict by default; with an installed fault
/// injector whose CSV fault rate is active, the blobs are garbled like
/// the CSV readers' rows and decoded leniently, counting the
/// faults.binary.rows_rejected metric. Errors name both the dataset and
/// the offending path.
DatasetBundle read_binary_bundle(const std::string& directory,
                                 bool lenient = false);

/// True when `directory` holds a binary bundle (connection_log.dab).
[[nodiscard]] bool binary_bundle_present(const std::string& directory);

/// Reads whichever format the directory holds (binary preferred).
DatasetBundle read_bundle_auto(const std::string& directory);

/// Visitor for the probe-ordered streaming read path.
class BundleStreamHandler {
public:
    virtual ~BundleStreamHandler() = default;
    virtual void on_metadata(const ProbeMetadata& meta) = 0;
    virtual void on_connection(const ConnectionLogEntry& entry) = 0;
    virtual void on_kroot(const KRootPingRecord& record) = 0;
    virtual void on_uptime(const UptimeRecord& record) = 0;
    /// No further records will arrive for probes <= `probe`.
    virtual void on_probe_complete(ProbeId probe) = 0;
};

/// Streams a binary bundle in ascending-probe order: all metadata first
/// (file order), then each probe's connection/kroot/uptime records
/// followed by on_probe_complete — exactly the StreamingPipeline feed
/// contract — touching O(block) bytes at a time via the footer index.
void stream_binary_bundle(const std::string& directory,
                          BundleStreamHandler& handler, bool lenient = false);

}  // namespace dynaddr::atlas

#include "atlas/binary_bundle.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <tuple>

#include "netcore/bytesource.hpp"
#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/memaccount.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/obs/trace.hpp"
#include "netcore/varint.hpp"
#include "sim/faults.hpp"

DYNADDR_LOG_MODULE(binary_bundle);

namespace dynaddr::atlas {

namespace {

using net::ByteCursor;
using net::put_varint;
using net::put_varint_signed;

enum class DatasetKind : std::uint8_t {
    ConnectionLog = 1,
    KRoot = 2,
    Uptime = 3,
    Probes = 4,
};

constexpr char kHeaderMagic[4] = {'D', 'A', 'B', '2'};
constexpr char kTailMagic[4] = {'D', 'A', 'B', 'E'};
constexpr std::uint8_t kFormatVersion = 1;
constexpr std::size_t kHeaderSize = 6;
constexpr std::size_t kTailSize = 12;  // u64 footer offset + magic

const char* dataset_file(DatasetKind kind) {
    switch (kind) {
        case DatasetKind::ConnectionLog: return "connection_log.dab";
        case DatasetKind::KRoot: return "kroot.dab";
        case DatasetKind::Uptime: return "uptime.dab";
        case DatasetKind::Probes: return "probes.dab";
    }
    return "unknown.dab";
}

const char* dataset_name(DatasetKind kind) {
    switch (kind) {
        case DatasetKind::ConnectionLog: return "connection_log";
        case DatasetKind::KRoot: return "kroot";
        case DatasetKind::Uptime: return "uptime";
        case DatasetKind::Probes: return "probes";
    }
    return "unknown";
}

// -- encoding ----------------------------------------------------------------

/// Deterministic address dictionary: indexes assigned in first-appearance
/// order, so an encode of the same record sequence is byte-stable.
class AddressDict {
public:
    std::uint64_t index_of(const PeerAddress& address) {
        const Key key = key_of(address);
        auto [it, inserted] = index_.try_emplace(key, entries_.size());
        if (inserted) entries_.push_back(address);
        return it->second;
    }

    [[nodiscard]] const std::vector<PeerAddress>& entries() const {
        return entries_;
    }

    void encode(std::string& out) const {
        put_varint(out, entries_.size());
        for (const auto& address : entries_) {
            if (address.is_v4()) {
                out.push_back(char(4));
                const std::uint32_t value = address.v4.value();
                for (int shift = 24; shift >= 0; shift -= 8)
                    out.push_back(char((value >> shift) & 0xFF));
            } else {
                out.push_back(char(16));
                for (const std::uint64_t half :
                     {address.v6.hi(), address.v6.lo()})
                    for (int shift = 56; shift >= 0; shift -= 8)
                        out.push_back(char((half >> shift) & 0xFF));
            }
        }
    }

private:
    using Key = std::tuple<int, std::uint32_t, std::uint64_t, std::uint64_t>;
    static Key key_of(const PeerAddress& a) {
        return a.is_v4() ? Key{4, a.v4.value(), 0, 0}
                         : Key{16, 0, a.v6.hi(), a.v6.lo()};
    }
    std::map<Key, std::uint64_t> index_;
    std::vector<PeerAddress> entries_;
};

std::vector<PeerAddress> decode_dict(ByteCursor& cursor) {
    const std::size_t count = cursor.length(cursor.remaining());
    std::vector<PeerAddress> dict;
    dict.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint8_t family = cursor.u8();
        if (family == 4) {
            const std::string_view raw = cursor.bytes(4);
            std::uint32_t value = 0;
            for (const char byte : raw)
                value = (value << 8) | std::uint8_t(byte);
            dict.push_back(PeerAddress::ipv4(net::IPv4Address{value}));
        } else if (family == 16) {
            const std::string_view raw = cursor.bytes(16);
            std::uint64_t hi = 0, lo = 0;
            for (int i8 = 0; i8 < 8; ++i8) hi = (hi << 8) | std::uint8_t(raw[i8]);
            for (int i8 = 8; i8 < 16; ++i8) lo = (lo << 8) | std::uint8_t(raw[i8]);
            dict.push_back(PeerAddress::ipv6(net::IPv6Address{hi, lo}));
        } else {
            throw ParseError("binary bundle: bad address family " +
                             std::to_string(int(family)) + " in dictionary");
        }
    }
    return dict;
}

/// Shared streaming encoder state for one dataset file: block buffering,
/// block index, footer/tail emission. The typed wrappers below own the
/// record buffer and the columnar payload layout.
struct BlockStream {
    std::string body;  ///< header + blocks so far
    struct IndexEntry {
        ProbeId probe;
        std::uint64_t offset;
        std::uint64_t count;
    };
    std::vector<IndexEntry> index;

    explicit BlockStream(DatasetKind kind) {
        body.append(kHeaderMagic, sizeof kHeaderMagic);
        body.push_back(char(std::uint8_t(kind)));
        body.push_back(char(kFormatVersion));
    }

    void add_block(ProbeId probe, std::uint64_t count,
                   std::string_view payload) {
        index.push_back({probe, body.size(), count});
        put_varint(body, probe);
        put_varint(body, count);
        body.append(payload);
    }

    /// Appends footer + tail; the stream is complete afterwards.
    void finish(const AddressDict* dict) {
        const std::uint64_t footer_offset = body.size();
        if (dict != nullptr) {
            dict->encode(body);
        } else {
            put_varint(body, 0);  // empty dictionary
        }
        put_varint(body, index.size());
        std::uint64_t previous = 0;
        for (const auto& entry : index) {
            put_varint(body, entry.probe);
            put_varint(body, entry.offset - previous);
            previous = entry.offset;
            put_varint(body, entry.count);
        }
        for (int shift = 0; shift < 64; shift += 8)
            body.push_back(char((footer_offset >> shift) & 0xFF));
        body.append(kTailMagic, sizeof kTailMagic);
    }
};

struct ConnectionEncoder {
    static constexpr DatasetKind kind = DatasetKind::ConnectionLog;
    AddressDict dict;
    static ProbeId probe_of(const ConnectionLogEntry& e) { return e.probe; }
    void payload(std::string& out, std::span<const ConnectionLogEntry> block) {
        std::int64_t previous = 0;
        for (const auto& e : block) {
            put_varint_signed(out, e.start.unix_seconds() - previous);
            previous = e.start.unix_seconds();
        }
        for (const auto& e : block)
            put_varint_signed(out,
                              e.end.unix_seconds() - e.start.unix_seconds());
        for (const auto& e : block) put_varint(out, dict.index_of(e.address));
    }
};

struct KRootEncoder {
    static constexpr DatasetKind kind = DatasetKind::KRoot;
    static ProbeId probe_of(const KRootPingRecord& r) { return r.probe; }
    static void payload(std::string& out,
                        std::span<const KRootPingRecord> block) {
        std::int64_t previous = 0;
        for (const auto& r : block) {
            put_varint_signed(out, r.timestamp.unix_seconds() - previous);
            previous = r.timestamp.unix_seconds();
        }
        for (const auto& r : block) put_varint_signed(out, r.sent);
        for (const auto& r : block) put_varint_signed(out, r.success);
        for (const auto& r : block) put_varint_signed(out, r.lts_seconds);
    }
};

struct UptimeEncoder {
    static constexpr DatasetKind kind = DatasetKind::Uptime;
    static ProbeId probe_of(const UptimeRecord& r) { return r.probe; }
    static void payload(std::string& out,
                        std::span<const UptimeRecord> block) {
        std::int64_t previous = 0;
        for (const auto& r : block) {
            put_varint_signed(out, r.timestamp.unix_seconds() - previous);
            previous = r.timestamp.unix_seconds();
        }
        for (const auto& r : block) put_varint(out, r.uptime_seconds);
    }
};

struct ProbesEncoder {
    static constexpr DatasetKind kind = DatasetKind::Probes;
    static ProbeId probe_of(const ProbeMetadata& p) { return p.probe; }
    static void payload(std::string& out,
                        std::span<const ProbeMetadata> block) {
        for (const auto& p : block) {
            out.push_back(char(int(p.version)));
            put_varint(out, p.country_code.size());
            out.append(p.country_code);
            put_varint(out, p.tags.size());
            for (const auto& tag : p.tags) {
                put_varint(out, tag.size());
                out.append(tag);
            }
        }
    }
};

/// One dataset's streaming encoder: records buffer per probe and flush as
/// a columnar block when the probe changes or the block fills.
template <typename Record, typename Encoder>
struct DatasetEncoder {
    BlockStream stream{Encoder::kind};
    Encoder encoder;
    std::vector<Record> buffer;
    ProbeId current = 0;
    std::size_t block_records;

    explicit DatasetEncoder(std::size_t block_records_)
        : block_records(block_records_ == 0 ? 1 : block_records_) {}

    void add(const Record& record) {
        const ProbeId probe = Encoder::probe_of(record);
        if (!buffer.empty() &&
            (probe != current || buffer.size() >= block_records))
            flush();
        current = probe;
        buffer.push_back(record);
    }

    void flush() {
        if (buffer.empty()) return;
        std::string payload;
        encoder.payload(payload, buffer);
        stream.add_block(current, buffer.size(), payload);
        buffer.clear();
    }

    std::string finish() {
        flush();
        if constexpr (std::is_same_v<Encoder, ConnectionEncoder>) {
            stream.finish(&encoder.dict);
        } else {
            stream.finish(nullptr);
        }
        return std::move(stream.body);
    }

    /// Heap held by this encoder: accumulated body, block index, and the
    /// per-probe record buffer. For memory accounting.
    [[nodiscard]] std::size_t memory_bytes() const {
        return stream.body.capacity() +
               stream.index.capacity() * sizeof(BlockStream::IndexEntry) +
               buffer.capacity() * sizeof(Record);
    }
};

template <typename Record, typename Encoder>
std::string encode_dataset(std::span<const Record> records,
                           std::size_t block_records) {
    DatasetEncoder<Record, Encoder> encoder(block_records);
    for (const auto& record : records) encoder.add(record);
    return encoder.finish();
}

// -- decoding ----------------------------------------------------------------

struct ParsedContainer {
    std::string_view data;
    std::vector<PeerAddress> dict;
    struct Block {
        ProbeId probe;
        std::uint64_t count;
        std::size_t offset;  ///< absolute, at the block's probe varint
        std::size_t size;    ///< bytes up to the next block / footer
    };
    std::vector<Block> blocks;  ///< file order
};

/// Parses header, tail and footer; blocks stay untouched (decoded on
/// demand, straight from the mapped bytes).
ParsedContainer parse_container(std::string_view data, DatasetKind expect) {
    if (data.size() < kHeaderSize + kTailSize)
        throw ParseError("binary bundle: file too small (" +
                         std::to_string(data.size()) + " bytes)");
    if (data.compare(0, 4, kHeaderMagic, 4) != 0)
        throw ParseError("binary bundle: bad header magic");
    if (std::uint8_t(data[4]) != std::uint8_t(expect))
        throw ParseError("binary bundle: dataset kind mismatch (file says " +
                         std::to_string(int(std::uint8_t(data[4]))) +
                         ", expected " + dataset_name(expect) + ")");
    if (std::uint8_t(data[5]) != kFormatVersion)
        throw ParseError("binary bundle: unsupported format version " +
                         std::to_string(int(std::uint8_t(data[5]))));
    if (data.compare(data.size() - 4, 4, kTailMagic, 4) != 0)
        throw ParseError("binary bundle: bad tail magic (truncated file?)");
    std::uint64_t footer_offset = 0;
    for (int i = 7; i >= 0; --i)
        footer_offset = (footer_offset << 8) |
                        std::uint8_t(data[data.size() - kTailSize + i]);
    if (footer_offset < kHeaderSize || footer_offset > data.size() - kTailSize)
        throw ParseError("binary bundle: footer offset " +
                         std::to_string(footer_offset) + " out of range");

    ParsedContainer parsed;
    parsed.data = data;
    ByteCursor cursor(data);
    cursor.seek(std::size_t(footer_offset));
    if (expect == DatasetKind::ConnectionLog) {
        parsed.dict = decode_dict(cursor);
    } else if (cursor.varint() != 0) {
        throw ParseError("binary bundle: unexpected dictionary in " +
                         std::string(dataset_name(expect)));
    }
    const std::size_t block_count = cursor.length(cursor.remaining());
    parsed.blocks.reserve(block_count);
    std::uint64_t offset = 0;
    for (std::size_t i = 0; i < block_count; ++i) {
        ParsedContainer::Block block;
        block.probe = ProbeId(cursor.varint());
        offset += cursor.varint();
        block.offset = std::size_t(offset);
        block.count = cursor.varint();
        parsed.blocks.push_back(block);
    }
    // Block extents: ascending offsets inside [header, footer).
    for (std::size_t i = 0; i < parsed.blocks.size(); ++i) {
        auto& block = parsed.blocks[i];
        const std::size_t end = i + 1 < parsed.blocks.size()
                                    ? parsed.blocks[i + 1].offset
                                    : std::size_t(footer_offset);
        if (block.offset < kHeaderSize || end > footer_offset ||
            block.offset >= end)
            throw ParseError("binary bundle: block " + std::to_string(i) +
                             " extent [" + std::to_string(block.offset) +
                             ", " + std::to_string(end) + ") out of range");
        block.size = end - block.offset;
        // Every record consumes at least one payload byte per column, so a
        // count above the byte extent is garbage; rejecting it here caps
        // the decoders' per-block allocations at the file size.
        if (block.count > block.size)
            throw ParseError("binary bundle: block " + std::to_string(i) +
                             " claims " + std::to_string(block.count) +
                             " records in " + std::to_string(block.size) +
                             " bytes");
    }
    return parsed;
}

/// Decodes one block, bounds-checked against the index entry; `emit` is
/// called once per record.
template <typename Emit>
void decode_connection_block(const ParsedContainer& parsed,
                             const ParsedContainer::Block& block, Emit&& emit) {
    ByteCursor cursor(parsed.data.substr(block.offset, block.size));
    const ProbeId probe = ProbeId(cursor.varint());
    const std::uint64_t count = cursor.varint();
    if (probe != block.probe || count != block.count)
        throw ParseError("binary bundle: block header disagrees with index");
    const std::size_t n = std::size_t(count);
    std::vector<std::int64_t> starts(n);
    std::int64_t previous = 0;
    for (auto& start : starts) {
        previous += cursor.varint_signed();
        start = previous;
    }
    std::vector<std::int64_t> durations(n);
    for (auto& duration : durations) duration = cursor.varint_signed();
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t dict_index = cursor.varint();
        if (dict_index >= parsed.dict.size())
            throw ParseError("binary bundle: address index " +
                             std::to_string(dict_index) +
                             " outside dictionary of " +
                             std::to_string(parsed.dict.size()));
        ConnectionLogEntry entry;
        entry.probe = probe;
        entry.start = net::TimePoint(starts[i]);
        entry.end = net::TimePoint(starts[i] + durations[i]);
        entry.address = parsed.dict[std::size_t(dict_index)];
        emit(entry);
    }
}

template <typename Emit>
void decode_kroot_block(const ParsedContainer& parsed,
                        const ParsedContainer::Block& block, Emit&& emit) {
    ByteCursor cursor(parsed.data.substr(block.offset, block.size));
    const ProbeId probe = ProbeId(cursor.varint());
    const std::uint64_t count = cursor.varint();
    if (probe != block.probe || count != block.count)
        throw ParseError("binary bundle: block header disagrees with index");
    const std::size_t n = std::size_t(count);
    std::vector<std::int64_t> timestamps(n);
    std::int64_t previous = 0;
    for (auto& ts : timestamps) {
        previous += cursor.varint_signed();
        ts = previous;
    }
    std::vector<std::int64_t> sent(n), success(n);
    for (auto& v : sent) v = cursor.varint_signed();
    for (auto& v : success) v = cursor.varint_signed();
    for (std::size_t i = 0; i < n; ++i) {
        KRootPingRecord record;
        record.probe = probe;
        record.timestamp = net::TimePoint(timestamps[i]);
        record.sent = int(sent[i]);
        record.success = int(success[i]);
        record.lts_seconds = cursor.varint_signed();
        emit(record);
    }
}

template <typename Emit>
void decode_uptime_block(const ParsedContainer& parsed,
                         const ParsedContainer::Block& block, Emit&& emit) {
    ByteCursor cursor(parsed.data.substr(block.offset, block.size));
    const ProbeId probe = ProbeId(cursor.varint());
    const std::uint64_t count = cursor.varint();
    if (probe != block.probe || count != block.count)
        throw ParseError("binary bundle: block header disagrees with index");
    const std::size_t n = std::size_t(count);
    std::vector<std::int64_t> timestamps(n);
    std::int64_t previous = 0;
    for (auto& ts : timestamps) {
        previous += cursor.varint_signed();
        ts = previous;
    }
    for (std::size_t i = 0; i < n; ++i) {
        UptimeRecord record;
        record.probe = probe;
        record.timestamp = net::TimePoint(timestamps[i]);
        record.uptime_seconds = cursor.varint();
        emit(record);
    }
}

template <typename Emit>
void decode_probes_block(const ParsedContainer& parsed,
                         const ParsedContainer::Block& block, Emit&& emit) {
    ByteCursor cursor(parsed.data.substr(block.offset, block.size));
    const ProbeId probe = ProbeId(cursor.varint());
    const std::uint64_t count = cursor.varint();
    if (probe != block.probe || count != block.count)
        throw ParseError("binary bundle: block header disagrees with index");
    for (std::uint64_t i = 0; i < count; ++i) {
        ProbeMetadata meta;
        meta.probe = probe;
        const int version = int(cursor.u8());
        if (version < 1 || version > 3)
            throw ParseError("binary bundle: bad probe version " +
                             std::to_string(version));
        meta.version = ProbeVersion(version);
        meta.country_code =
            std::string(cursor.bytes(cursor.length(cursor.remaining())));
        const std::size_t tags = cursor.length(cursor.remaining());
        meta.tags.reserve(tags);
        for (std::size_t t = 0; t < tags; ++t)
            meta.tags.emplace_back(
                cursor.bytes(cursor.length(cursor.remaining())));
        emit(meta);
    }
}

/// Walks blocks in `order`, decoding each with `decode`; lenient mode
/// swallows per-block ParseErrors and tallies them.
template <typename DecodeBlock>
void for_each_block(const ParsedContainer& parsed,
                    std::span<const ParsedContainer::Block> order,
                    bool lenient, BinaryDecodeStats* stats,
                    DecodeBlock&& decode) {
    for (const auto& block : order) {
        try {
            decode(block);
        } catch (const ParseError&) {
            if (!lenient) throw;
            if (stats != nullptr) {
                stats->rows_rejected += std::size_t(block.count);
                ++stats->blocks_rejected;
            }
        }
    }
}

/// Decodes `block` into a scratch buffer and forwards records to `sink`
/// only once the whole block has parsed. The column decoders emit record
/// by record, but the lenient contract is "drop the offending block":
/// without staging, a ParseError halfway through a block would leave the
/// already-emitted half in the output (or worse, already pushed into a
/// streaming handler that cannot un-see it) while the whole block's count
/// is tallied as rejected.
template <typename Record, typename DecodeFn, typename Sink>
void decode_block_staged(const ParsedContainer& parsed,
                         const ParsedContainer::Block& block,
                         DecodeFn&& decode_fn, Sink&& sink) {
    std::vector<Record> staged;
    staged.reserve(std::size_t(block.count));
    decode_fn(parsed, block,
              [&](const Record& record) { staged.push_back(record); });
    for (Record& record : staged) sink(std::move(record));
}

template <typename Record, typename DecodeBlock>
std::vector<Record> decode_dataset(std::string_view data, DatasetKind kind,
                                   bool lenient, BinaryDecodeStats* stats,
                                   DecodeBlock&& decode_block) {
    std::vector<Record> records;
    ParsedContainer parsed;
    try {
        parsed = parse_container(data, kind);
    } catch (const ParseError&) {
        // Without a readable footer there is no index to resync on: the
        // whole file is lost even leniently.
        if (!lenient) throw;
        if (stats != nullptr) ++stats->blocks_rejected;
        return records;
    }
    for_each_block(parsed, parsed.blocks, lenient, stats,
                   [&](const ParsedContainer::Block& block) {
                       decode_block_staged<Record>(
                           parsed, block, decode_block,
                           [&](Record&& record) {
                               records.push_back(std::move(record));
                           });
                   });
    return records;
}

// -- file plumbing -----------------------------------------------------------

/// Maps a .dab file; with CSV-style faults planned, copies and garbles
/// the block region (header, footer and tail stay intact, mirroring the
/// CSV corrupter's header-preserving contract). Returns the corrupted
/// copy in `scratch` when faulting, else an empty optional.
struct LoadedDataset {
    net::ByteSource source;
    std::string scratch;
    bool faulted = false;

    [[nodiscard]] std::string_view view() const {
        return faulted ? std::string_view(scratch) : source.view();
    }
};

LoadedDataset load_dataset(const std::filesystem::path& path,
                           DatasetKind kind) {
    LoadedDataset loaded;
    try {
        loaded.source = net::ByteSource::map_file(path.string());
    } catch (const Error& e) {
        throw Error("cannot open " + path.string() + " for reading (dataset " +
                    dataset_name(kind) + "): " + e.what());
    }
    sim::FaultInjector* injector = sim::fault_injector();
    if (injector != nullptr && injector->plan().csv.any()) {
        loaded.scratch = std::string(loaded.source.view());
        loaded.faulted = true;
        if (loaded.scratch.size() >= kHeaderSize + kTailSize) {
            std::uint64_t footer_offset = 0;
            for (int i = 7; i >= 0; --i)
                footer_offset =
                    (footer_offset << 8) |
                    std::uint8_t(
                        loaded.scratch[loaded.scratch.size() - kTailSize + i]);
            const std::size_t end = std::min(std::size_t(footer_offset),
                                             loaded.scratch.size() - kTailSize);
            injector->corrupt_binary(loaded.scratch, kHeaderSize, end);
        }
    }
    return loaded;
}

template <typename Record, typename DecodeBlock>
std::vector<Record> read_dataset_file(const std::filesystem::path& path,
                                      DatasetKind kind, bool lenient,
                                      DecodeBlock&& decode_block) {
    const LoadedDataset loaded = load_dataset(path, kind);
    const bool effective_lenient = lenient || loaded.faulted;
    BinaryDecodeStats stats;
    std::vector<Record> records;
    try {
        records = decode_dataset<Record>(loaded.view(), kind,
                                         effective_lenient, &stats,
                                         decode_block);
    } catch (const ParseError& e) {
        throw Error("reading dataset " + std::string(dataset_name(kind)) +
                    " (" + path.string() + "): " + e.what());
    }
    if (stats.rows_rejected > 0)
        obs::counter("faults.binary.rows_rejected").inc(stats.rows_rejected);
    if (stats.blocks_rejected > 0)
        obs::counter("faults.binary.blocks_rejected")
            .inc(stats.blocks_rejected);
    return records;
}

void write_file(const std::filesystem::path& path, DatasetKind kind,
                std::string_view body) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw Error("cannot open " + path.string() + " for writing (dataset " +
                    dataset_name(kind) + ")");
    out.write(body.data(), std::streamsize(body.size()));
    out.flush();
    if (!out)
        throw Error("write failed on " + path.string() + " (dataset " +
                    dataset_name(kind) + ")");
}

}  // namespace

// -- in-memory codecs --------------------------------------------------------

std::string encode_connection_log_binary(
    std::span<const ConnectionLogEntry> entries, std::size_t block_records) {
    return encode_dataset<ConnectionLogEntry, ConnectionEncoder>(
        entries, block_records);
}

std::string encode_kroot_binary(std::span<const KRootPingRecord> records,
                                std::size_t block_records) {
    return encode_dataset<KRootPingRecord, KRootEncoder>(records,
                                                         block_records);
}

std::string encode_uptime_binary(std::span<const UptimeRecord> records,
                                 std::size_t block_records) {
    return encode_dataset<UptimeRecord, UptimeEncoder>(records, block_records);
}

std::string encode_probes_binary(std::span<const ProbeMetadata> probes,
                                 std::size_t block_records) {
    return encode_dataset<ProbeMetadata, ProbesEncoder>(probes, block_records);
}

std::vector<ConnectionLogEntry> decode_connection_log_binary(
    std::string_view data, bool lenient, BinaryDecodeStats* stats) {
    return decode_dataset<ConnectionLogEntry>(
        data, DatasetKind::ConnectionLog, lenient, stats,
        [](const ParsedContainer& parsed, const ParsedContainer::Block& block,
           auto&& emit) { decode_connection_block(parsed, block, emit); });
}

std::vector<KRootPingRecord> decode_kroot_binary(std::string_view data,
                                                 bool lenient,
                                                 BinaryDecodeStats* stats) {
    return decode_dataset<KRootPingRecord>(
        data, DatasetKind::KRoot, lenient, stats,
        [](const ParsedContainer& parsed, const ParsedContainer::Block& block,
           auto&& emit) { decode_kroot_block(parsed, block, emit); });
}

std::vector<UptimeRecord> decode_uptime_binary(std::string_view data,
                                               bool lenient,
                                               BinaryDecodeStats* stats) {
    return decode_dataset<UptimeRecord>(
        data, DatasetKind::Uptime, lenient, stats,
        [](const ParsedContainer& parsed, const ParsedContainer::Block& block,
           auto&& emit) { decode_uptime_block(parsed, block, emit); });
}

std::vector<ProbeMetadata> decode_probes_binary(std::string_view data,
                                                bool lenient,
                                                BinaryDecodeStats* stats) {
    return decode_dataset<ProbeMetadata>(
        data, DatasetKind::Probes, lenient, stats,
        [](const ParsedContainer& parsed, const ParsedContainer::Block& block,
           auto&& emit) { decode_probes_block(parsed, block, emit); });
}

// -- streaming writer --------------------------------------------------------

struct BinaryBundleWriter::Impl {
    std::filesystem::path directory;
    std::size_t block_records;
    DatasetEncoder<ConnectionLogEntry, ConnectionEncoder> connections;
    DatasetEncoder<KRootPingRecord, KRootEncoder> kroot;
    DatasetEncoder<UptimeRecord, UptimeEncoder> uptime;
    DatasetEncoder<ProbeMetadata, ProbesEncoder> probes;
    bool closed = false;
    /// Capacity accounting (mem.atlas.dab2_writer): the four encoders'
    /// bodies + buffers, published every 1024 records and at close.
    obs::MemRegistration mem{"atlas.dab2_writer"};
    std::size_t mem_ops = 0;
    std::uint64_t records_added = 0;

    void note_record() {
        ++records_added;
        if ((++mem_ops & 1023) == 0) publish_mem();
    }
    void publish_mem() {
        mem.report(connections.memory_bytes() + kroot.memory_bytes() +
                       uptime.memory_bytes() + probes.memory_bytes(),
                   records_added);
    }

    Impl(std::string dir, std::size_t block_records_)
        : directory(std::move(dir)),
          block_records(block_records_),
          connections(block_records_),
          kroot(block_records_),
          uptime(block_records_),
          probes(block_records_) {
        std::filesystem::create_directories(directory);
    }
};

BinaryBundleWriter::BinaryBundleWriter(const std::string& directory,
                                       std::size_t block_records)
    : impl_(std::make_unique<Impl>(directory, block_records)) {}

BinaryBundleWriter::~BinaryBundleWriter() {
    try {
        close();
    } catch (const Error&) {
        // Destructor path: the files stay tail-less and readers reject
        // them loudly; callers wanting the error call close() themselves.
    }
}

void BinaryBundleWriter::add_connection(const ConnectionLogEntry& entry) {
    impl_->connections.add(entry);
    impl_->note_record();
}

void BinaryBundleWriter::add_kroot(const KRootPingRecord& record) {
    impl_->kroot.add(record);
    impl_->note_record();
}

void BinaryBundleWriter::add_uptime(const UptimeRecord& record) {
    impl_->uptime.add(record);
    impl_->note_record();
}

void BinaryBundleWriter::add_probe(const ProbeMetadata& meta) {
    impl_->probes.add(meta);
    impl_->note_record();
}

void BinaryBundleWriter::close() {
    if (impl_->closed) return;
    impl_->closed = true;
    impl_->publish_mem();
    write_file(impl_->directory / dataset_file(DatasetKind::ConnectionLog),
               DatasetKind::ConnectionLog, impl_->connections.finish());
    write_file(impl_->directory / dataset_file(DatasetKind::KRoot),
               DatasetKind::KRoot, impl_->kroot.finish());
    write_file(impl_->directory / dataset_file(DatasetKind::Uptime),
               DatasetKind::Uptime, impl_->uptime.finish());
    write_file(impl_->directory / dataset_file(DatasetKind::Probes),
               DatasetKind::Probes, impl_->probes.finish());
}

// -- whole-bundle I/O --------------------------------------------------------

void write_binary_bundle(const std::string& directory,
                         const DatasetBundle& bundle,
                         std::size_t block_records) {
    obs::ObsSpan span("datasets.write_binary_bundle", "io",
                      &obs::latency_histogram("datasets.write_binary_bundle"));
    const std::filesystem::path dir(directory);
    std::filesystem::create_directories(dir);
    write_file(dir / dataset_file(DatasetKind::ConnectionLog),
               DatasetKind::ConnectionLog,
               encode_connection_log_binary(bundle.connection_log,
                                            block_records));
    write_file(dir / dataset_file(DatasetKind::KRoot), DatasetKind::KRoot,
               encode_kroot_binary(bundle.kroot_pings, block_records));
    write_file(dir / dataset_file(DatasetKind::Uptime), DatasetKind::Uptime,
               encode_uptime_binary(bundle.uptime_records, block_records));
    write_file(dir / dataset_file(DatasetKind::Probes), DatasetKind::Probes,
               encode_probes_binary(bundle.probes, block_records));
}

DatasetBundle read_binary_bundle(const std::string& directory, bool lenient) {
    obs::ObsSpan span("datasets.read_binary_bundle", "io",
                      &obs::latency_histogram("datasets.read_binary_bundle"));
    const std::filesystem::path dir(directory);
    DatasetBundle bundle;
    {
        obs::ObsSpan part("datasets.read_connection_log", "io");
        bundle.connection_log = read_dataset_file<ConnectionLogEntry>(
            dir / dataset_file(DatasetKind::ConnectionLog),
            DatasetKind::ConnectionLog, lenient,
            [](const ParsedContainer& parsed,
               const ParsedContainer::Block& block,
               auto&& emit) { decode_connection_block(parsed, block, emit); });
    }
    {
        obs::ObsSpan part("datasets.read_kroot", "io");
        bundle.kroot_pings = read_dataset_file<KRootPingRecord>(
            dir / dataset_file(DatasetKind::KRoot), DatasetKind::KRoot,
            lenient,
            [](const ParsedContainer& parsed,
               const ParsedContainer::Block& block,
               auto&& emit) { decode_kroot_block(parsed, block, emit); });
    }
    {
        obs::ObsSpan part("datasets.read_uptime", "io");
        bundle.uptime_records = read_dataset_file<UptimeRecord>(
            dir / dataset_file(DatasetKind::Uptime), DatasetKind::Uptime,
            lenient,
            [](const ParsedContainer& parsed,
               const ParsedContainer::Block& block,
               auto&& emit) { decode_uptime_block(parsed, block, emit); });
    }
    {
        obs::ObsSpan part("datasets.read_probes", "io");
        bundle.probes = read_dataset_file<ProbeMetadata>(
            dir / dataset_file(DatasetKind::Probes), DatasetKind::Probes,
            lenient,
            [](const ParsedContainer& parsed,
               const ParsedContainer::Block& block,
               auto&& emit) { decode_probes_block(parsed, block, emit); });
    }
    obs::counter("datasets.rows_read")
        .inc(bundle.connection_log.size() + bundle.kroot_pings.size() +
             bundle.uptime_records.size() + bundle.probes.size());
    DYNADDR_LOG(Info, binary_bundle, "read binary bundle from ", directory,
                ": ", bundle.connection_log.size(), " connections, ",
                bundle.kroot_pings.size(), " kroot pings, ",
                bundle.uptime_records.size(), " uptime records, ",
                bundle.probes.size(), " probes");
    return bundle;
}

bool binary_bundle_present(const std::string& directory) {
    return std::filesystem::exists(
        std::filesystem::path(directory) /
        dataset_file(DatasetKind::ConnectionLog));
}

DatasetBundle read_bundle_auto(const std::string& directory) {
    return binary_bundle_present(directory) ? read_binary_bundle(directory)
                                            : read_bundle(directory);
}

// -- streaming read path -----------------------------------------------------

void stream_binary_bundle(const std::string& directory,
                          BundleStreamHandler& handler, bool lenient) {
    obs::ObsSpan span("datasets.stream_binary_bundle", "io",
                      &obs::latency_histogram("datasets.stream_binary_bundle"));
    const std::filesystem::path dir(directory);

    struct Dataset {
        DatasetKind kind;
        LoadedDataset loaded;
        ParsedContainer parsed;
        std::vector<ParsedContainer::Block> by_probe;  ///< stable by probe
        bool effective_lenient = false;
    };
    auto load = [&](DatasetKind kind) {
        Dataset dataset;
        dataset.kind = kind;
        dataset.loaded = load_dataset(dir / dataset_file(kind), kind);
        dataset.effective_lenient = lenient || dataset.loaded.faulted;
        try {
            dataset.parsed = parse_container(dataset.loaded.view(), kind);
        } catch (const ParseError& e) {
            if (!dataset.effective_lenient)
                throw Error("reading dataset " +
                            std::string(dataset_name(kind)) + " (" +
                            (dir / dataset_file(kind)).string() +
                            "): " + e.what());
            obs::counter("faults.binary.blocks_rejected").inc();
        }
        dataset.by_probe = dataset.parsed.blocks;
        std::stable_sort(dataset.by_probe.begin(), dataset.by_probe.end(),
                         [](const ParsedContainer::Block& a,
                            const ParsedContainer::Block& b) {
                             return a.probe < b.probe;
                         });
        return dataset;
    };

    Dataset connections = load(DatasetKind::ConnectionLog);
    Dataset kroot = load(DatasetKind::KRoot);
    Dataset uptime = load(DatasetKind::Uptime);
    Dataset probes = load(DatasetKind::Probes);

    BinaryDecodeStats stats;
    // Metadata first, in file order — the version map is last-wins and
    // geography follows archive order, matching the batch reader.
    for_each_block(
        probes.parsed, probes.parsed.blocks, probes.effective_lenient, &stats,
        [&](const ParsedContainer::Block& block) {
            decode_block_staged<ProbeMetadata>(
                probes.parsed, block,
                [](const ParsedContainer& parsed,
                   const ParsedContainer::Block& inner,
                   auto&& emit) { decode_probes_block(parsed, inner, emit); },
                [&](const ProbeMetadata& meta) { handler.on_metadata(meta); });
        });

    // Ascending-probe merge over the three record channels.
    std::size_t ci = 0, ki = 0, ui = 0;
    while (ci < connections.by_probe.size() || ki < kroot.by_probe.size() ||
           ui < uptime.by_probe.size()) {
        ProbeId next = std::numeric_limits<ProbeId>::max();
        if (ci < connections.by_probe.size())
            next = std::min(next, connections.by_probe[ci].probe);
        if (ki < kroot.by_probe.size())
            next = std::min(next, kroot.by_probe[ki].probe);
        if (ui < uptime.by_probe.size())
            next = std::min(next, uptime.by_probe[ui].probe);

        while (ci < connections.by_probe.size() &&
               connections.by_probe[ci].probe == next) {
            for_each_block(
                connections.parsed, {&connections.by_probe[ci], 1},
                connections.effective_lenient, &stats,
                [&](const ParsedContainer::Block& block) {
                    decode_block_staged<ConnectionLogEntry>(
                        connections.parsed, block,
                        [](const ParsedContainer& parsed,
                           const ParsedContainer::Block& inner, auto&& emit) {
                            decode_connection_block(parsed, inner, emit);
                        },
                        [&](const ConnectionLogEntry& entry) {
                            handler.on_connection(entry);
                        });
                });
            ++ci;
        }
        while (ki < kroot.by_probe.size() &&
               kroot.by_probe[ki].probe == next) {
            for_each_block(
                kroot.parsed, {&kroot.by_probe[ki], 1},
                kroot.effective_lenient, &stats,
                [&](const ParsedContainer::Block& block) {
                    decode_block_staged<KRootPingRecord>(
                        kroot.parsed, block,
                        [](const ParsedContainer& parsed,
                           const ParsedContainer::Block& inner, auto&& emit) {
                            decode_kroot_block(parsed, inner, emit);
                        },
                        [&](const KRootPingRecord& record) {
                            handler.on_kroot(record);
                        });
                });
            ++ki;
        }
        while (ui < uptime.by_probe.size() &&
               uptime.by_probe[ui].probe == next) {
            for_each_block(
                uptime.parsed, {&uptime.by_probe[ui], 1},
                uptime.effective_lenient, &stats,
                [&](const ParsedContainer::Block& block) {
                    decode_block_staged<UptimeRecord>(
                        uptime.parsed, block,
                        [](const ParsedContainer& parsed,
                           const ParsedContainer::Block& inner, auto&& emit) {
                            decode_uptime_block(parsed, inner, emit);
                        },
                        [&](const UptimeRecord& record) {
                            handler.on_uptime(record);
                        });
                });
            ++ui;
        }
        handler.on_probe_complete(next);
    }
    if (stats.rows_rejected > 0)
        obs::counter("faults.binary.rows_rejected").inc(stats.rows_rejected);
    if (stats.blocks_rejected > 0)
        obs::counter("faults.binary.blocks_rejected")
            .inc(stats.blocks_rejected);
}

}  // namespace dynaddr::atlas

#include "atlas/cpe.hpp"

#include "netcore/error.hpp"

namespace dynaddr::atlas {

Cpe::Cpe(CpeConfig config, pool::ClientId subscriber, sim::Simulation& sim,
         rng::Stream rng, Probe& probe, Timeline& timeline,
         dhcp::Server* dhcp_server, ppp::RadiusServer* radius)
    : config_(config),
      subscriber_(subscriber),
      sim_(&sim),
      rng_(rng),
      probe_(&probe),
      timeline_(&timeline),
      dhcp_server_(dhcp_server),
      radius_(radius) {
    const bool want_dhcp = config_.wan == CpeConfig::Wan::Dhcp;
    if (want_dhcp != (dhcp_server != nullptr) || want_dhcp == (radius != nullptr))
        throw Error("CPE backend does not match configured WAN protocol");
    reconnect_minute_offset_ = net::Duration{rng_.uniform_int(0, 3599)};
    build_client();
}

void Cpe::start() {
    if (powered_) return;
    powered_ = true;
    booted_ = true;  // initial install: assume CPE already running
    probe_->power_on(RebootCause::InitialPowerOn);
    if (config_.wan == CpeConfig::Wan::Dhcp)
        dhcp_client_->power_on();
    else
        ppp_session_->power_on();
    if (config_.daily_reconnect_hour) schedule_daily_reconnect();
}

void Cpe::power_fail(sim::CauseSite site) {
    if (!powered_) return;
    powered_ = false;
    booted_ = false;
    // Episode opens before the WAN client reports the loss, so the ledger
    // sees the outage as active at the loss instant.
    sim::cause_power_down(subscriber_, sim_->now(), site);
    if (boot_event_) {
        sim_->cancel(*boot_event_);
        boot_event_.reset();
    }
    if (config_.probe_usb_powered) probe_->power_off();
    // Power cut is abrupt: no DHCPRELEASE; the PPP session dies and the
    // BRAS sees lost carrier.
    if (config_.wan == CpeConfig::Wan::Dhcp)
        dhcp_client_->power_off(/*graceful=*/false);
    else
        ppp_session_->power_off();
}

void Cpe::power_restore() {
    if (powered_) return;
    powered_ = true;
    sim::cause_power_up(subscriber_, sim_->now());
    if (config_.probe_usb_powered) probe_->power_on(RebootCause::PowerCycle);
    const net::Duration boot{
        rng_.uniform_int(config_.boot_min.count(), config_.boot_max.count())};
    boot_event_ = sim_->after(boot, [this](net::TimePoint) {
        boot_event_.reset();
        booted_ = true;
        if (config_.wan == CpeConfig::Wan::Dhcp)
            dhcp_client_->power_on();
        else
            ppp_session_->power_on();
    });
}

void Cpe::net_fail(sim::CauseSite site) {
    if (!net_up_) return;
    net_up_ = false;
    sim::cause_net_down(subscriber_, sim_->now(), site);
    timeline_->net_down_begin(sim_->now());
    probe_->wan_update(std::nullopt);
    if (config_.wan == CpeConfig::Wan::Dhcp)
        dhcp_client_->link_lost();
    else
        ppp_session_->link_lost();
}

void Cpe::net_restore() {
    if (net_up_) return;
    net_up_ = true;
    sim::cause_net_up(subscriber_, sim_->now());
    timeline_->net_down_end(sim_->now());
    if (config_.wan == CpeConfig::Wan::Dhcp) {
        dhcp_client_->link_restored();
        // A DHCP lease can ride out a short outage: connectivity on the
        // held address resumes immediately.
        if (address_) probe_->wan_update(PeerAddress::ipv4(*address_));
    } else {
        ppp_session_->link_restored();
    }
}

void Cpe::switch_backend(dhcp::Server* dhcp_server, ppp::RadiusServer* radius,
                         CpeConfig::Wan wan) {
    sim::cause_note(subscriber_, sim::CauseKind::CrossAsMove,
                    sim::CauseSite::ScenarioMover, sim_->now());
    // Orderly teardown of the old WAN attachment.
    if (config_.wan == CpeConfig::Wan::Dhcp)
        dhcp_client_->power_off(/*graceful=*/true);
    else
        ppp_session_->power_off();
    address_.reset();
    timeline_->clear_address(sim_->now());
    probe_->wan_update(std::nullopt);

    config_.wan = wan;
    dhcp_server_ = dhcp_server;
    radius_ = radius;
    const bool want_dhcp = wan == CpeConfig::Wan::Dhcp;
    if (want_dhcp != (dhcp_server != nullptr) || want_dhcp == (radius != nullptr))
        throw Error("CPE backend does not match configured WAN protocol");
    build_client();
    if (powered_ && booted_) {
        if (want_dhcp)
            dhcp_client_->power_on();
        else
            ppp_session_->power_on();
    }
}

std::optional<net::IPv4Address> Cpe::wan_address() const { return address_; }

void Cpe::build_client() {
    dhcp_client_.reset();
    ppp_session_.reset();
    auto reachable = [this] { return this->reachable(); };
    if (config_.wan == CpeConfig::Wan::Dhcp) {
        dhcp_client_ = std::make_unique<dhcp::Client>(
            config_.dhcp, subscriber_, *dhcp_server_, *sim_, reachable);
        dhcp_client_->set_on_acquired(
            [this](net::IPv4Address a) { on_acquired(a); });
        dhcp_client_->set_on_lost([this](dhcp::LossReason reason) {
            // Only natural lease expiry is itself a root cause; NAKs,
            // releases and reboots are symptoms of whatever provoked them.
            if (reason == dhcp::LossReason::LeaseExpired)
                ledger_lost(sim::CauseKind::LeaseExpiry,
                            sim::CauseSite::DhcpLeaseTimer);
            else
                ledger_lost(sim::CauseKind::Unknown,
                            sim::CauseSite::Unspecified);
            on_lost();
        });
    } else {
        ppp_session_ = std::make_unique<ppp::Session>(
            config_.ppp, subscriber_, *radius_, *sim_, rng_.child("ppp"),
            reachable);
        ppp_session_->set_on_acquired(
            [this](net::IPv4Address a) { on_acquired(a); });
        ppp_session_->set_on_lost([this](ppp::StopReason reason) {
            switch (reason) {
                case ppp::StopReason::SessionTimeout:
                    ledger_lost(sim::CauseKind::SessionExpiry,
                                sim::CauseSite::PppSessionTimeout);
                    break;
                case ppp::StopReason::UserRequest:
                    ledger_lost(sim::CauseKind::NightlyReconnect,
                                sim::CauseSite::CpeNightlyReconnect);
                    break;
                default:
                    ledger_lost(sim::CauseKind::Unknown,
                                sim::CauseSite::Unspecified);
                    break;
            }
            on_lost();
        });
    }
}

void Cpe::on_acquired(net::IPv4Address address) {
    sim::cause_acquired(subscriber_, sim_->now(), address);
    address_ = address;
    timeline_->set_address(sim_->now(), PeerAddress::ipv4(address));
    if (net_up_) probe_->wan_update(PeerAddress::ipv4(address));
}

void Cpe::on_lost() {
    address_.reset();
    timeline_->clear_address(sim_->now());
    probe_->wan_update(std::nullopt);
}

void Cpe::ledger_lost(sim::CauseKind kind, sim::CauseSite site) {
    sim::cause_lost(subscriber_, sim_->now(), kind, site);
}

void Cpe::schedule_daily_reconnect() {
    // Next occurrence of the configured hour (plus this CPE's fixed
    // minute offset), strictly in the future. One persistent periodic
    // event replaces a fresh allocation per day; the engine re-arms the
    // same slot after each firing, so the interleaving matches the old
    // reschedule-at-end-of-callback exactly. The recurrence survives
    // power failures — the callback guards on powered_/booted_ instead.
    const int hour = *config_.daily_reconnect_hour;
    const std::int64_t day_start =
        sim_->now().unix_seconds() - sim_->now().unix_seconds() % 86400;
    net::TimePoint next{day_start + hour * 3600 + reconnect_minute_offset_.count()};
    while (next <= sim_->now()) next += net::Duration::days(1);
    reconnect_event_ =
        sim_->every(next, net::Duration::days(1), [this](net::TimePoint) {
            if (config_.wan == CpeConfig::Wan::Ppp && powered_ && booted_)
                ppp_session_->reconnect_now();
        });
}

}  // namespace dynaddr::atlas

#pragma once

#include <vector>

#include "atlas/datasets.hpp"
#include "atlas/timeline.hpp"
#include "netcore/rng.hpp"

namespace dynaddr::atlas {

/// Sampling policy for emitting k-root ping records from a timeline.
///
/// Real probes measure every 240 s all year (~131k records per probe per
/// year). Emitting all of them for thousands of simulated probes is
/// wasteful: outage detection keys on the timestamps of all-loss records,
/// so only samples *near connectivity events* carry information. The
/// emitter therefore samples on a dense grid inside a window around every
/// timeline event and on a sparse grid elsewhere. Setting
/// `base_cadence == dense_cadence == 240 s` reproduces the full dataset
/// exactly (tests do this on short windows to validate the thinning).
struct KRootSamplingPolicy {
    net::Duration dense_cadence = net::Duration::seconds(240);
    net::Duration base_cadence = net::Duration::seconds(3600);
    /// Half-width of the dense window centred on each timeline event.
    net::Duration dense_window = net::Duration::seconds(2700);
    /// Probability that a healthy measurement loses 1-2 of its 3 pings
    /// (transient loss noise; never all three, so no false outages).
    double partial_loss_probability = 0.002;
};

/// Generates k-root ping records for one probe over `window`. The
/// timeline must be finalized. Records are emitted only while the probe
/// is running (a powered-off probe measures nothing); all pings fail when
/// the network is down or no address is held, and the LTS value grows
/// from the moment connectivity was lost — exactly the signature the
/// paper's detector (Table 3) keys on.
std::vector<KRootPingRecord> emit_kroot_records(const Timeline& timeline,
                                                net::TimeInterval window,
                                                const KRootSamplingPolicy& policy,
                                                rng::Stream rng);

}  // namespace dynaddr::atlas

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/ipv6.hpp"
#include "netcore/time.hpp"

namespace dynaddr::atlas {

/// RIPE Atlas probe identifier.
using ProbeId = std::uint32_t;

/// Probe hardware generations. v1/v2 are vulnerable to
/// memory-fragmentation reboots when establishing TCP connections, which
/// is why the paper excludes them from power-outage analysis.
enum class ProbeVersion { V1 = 1, V2 = 2, V3 = 3 };

/// Peer address as seen by the central controller. The paper filters
/// dual-stack probes out of the IPv4 analysis; the IPv6 side additionally
/// feeds the RFC 4941 privacy-extension analysis the paper names as
/// future work.
struct PeerAddress {
    enum class Family { IPv4, IPv6 };
    Family family = Family::IPv4;
    net::IPv4Address v4;  ///< valid when family == IPv4
    net::IPv6Address v6;  ///< valid when family == IPv6

    static PeerAddress ipv4(net::IPv4Address a) {
        return {Family::IPv4, a, net::IPv6Address{}};
    }
    static PeerAddress ipv6(net::IPv6Address a) {
        return {Family::IPv6, net::IPv4Address{}, a};
    }
    /// Convenience for tests and opaque generators: a documentation-range
    /// (2001:db8::/32) address carrying `token` in its interface id.
    static PeerAddress ipv6_token(std::uint64_t token) {
        return ipv6(net::IPv6Address{0x20010db800000000ULL, token});
    }

    [[nodiscard]] bool is_v4() const { return family == Family::IPv4; }

    /// "91.55.174.103" or RFC 5952 IPv6 text.
    [[nodiscard]] std::string to_string() const;

    /// Parses either family (presence of ':' selects IPv6).
    static std::optional<PeerAddress> parse(std::string_view text);

    friend bool operator==(const PeerAddress&, const PeerAddress&) = default;
};

/// One row of the RIPE Atlas connection-logs dataset (paper Table 1):
/// one TCP connection from the probe to its central controller.
struct ConnectionLogEntry {
    ProbeId probe = 0;
    net::TimePoint start;  ///< connection establishment
    net::TimePoint end;    ///< last receipt of data
    PeerAddress address;   ///< publicly visible (CPE) address
};

/// One row of the k-root ping dataset (paper Table 3): every four minutes
/// the probe sends three pings to the k-root DNS server and reports the
/// outcome together with its "last time synchronised" age.
struct KRootPingRecord {
    ProbeId probe = 0;
    net::TimePoint timestamp;
    int sent = 3;
    int success = 3;
    std::int64_t lts_seconds = 0;  ///< seconds since last controller sync
};

/// One row of the SOS-uptime dataset (paper Table 4): the probe's
/// seconds-since-boot counter, reported on each new controller connection.
struct UptimeRecord {
    ProbeId probe = 0;
    net::TimePoint timestamp;
    std::uint64_t uptime_seconds = 0;
};

/// Probe metadata from the RIPE Atlas probe archive: the analysis uses the
/// country for geographic grouping and the voluntary tags for multihomed
/// filtering — both public metadata the paper also used.
struct ProbeMetadata {
    ProbeId probe = 0;
    ProbeVersion version = ProbeVersion::V3;
    std::string country_code;        ///< ISO 3166-1 alpha-2
    std::vector<std::string> tags;   ///< e.g. "multihomed", "datacentre"
};

/// The bundle of datasets one simulation run (or one real-data import)
/// produces; exactly what the paper's authors had to work with.
struct DatasetBundle {
    std::vector<ConnectionLogEntry> connection_log;
    std::vector<KRootPingRecord> kroot_pings;
    std::vector<UptimeRecord> uptime_records;
    std::vector<ProbeMetadata> probes;

    /// Sorts every dataset by (probe, time) — emitters append per-probe,
    /// so a global sort makes downstream scans deterministic.
    void sort();
};

/// CSV serialization, one file per dataset. Schemas:
///   connection_log: probe,start,end,address
///   kroot:          probe,timestamp,sent,success,lts
///   uptime:         probe,timestamp,uptime
///   probes:         probe,version,country,tags  (tags ';'-separated)
void write_connection_log_csv(std::ostream& out,
                              const std::vector<ConnectionLogEntry>& entries);
std::vector<ConnectionLogEntry> read_connection_log_csv(std::istream& in);

void write_kroot_csv(std::ostream& out, const std::vector<KRootPingRecord>& records);
std::vector<KRootPingRecord> read_kroot_csv(std::istream& in);

void write_uptime_csv(std::ostream& out, const std::vector<UptimeRecord>& records);
std::vector<UptimeRecord> read_uptime_csv(std::istream& in);

void write_probes_csv(std::ostream& out, const std::vector<ProbeMetadata>& probes);
std::vector<ProbeMetadata> read_probes_csv(std::istream& in);

/// Writes/reads the whole bundle to a directory (connection_log.csv,
/// kroot.csv, uptime.csv, probes.csv).
void write_bundle(const std::string& directory, const DatasetBundle& bundle);
DatasetBundle read_bundle(const std::string& directory);

/// The RIPE NCC testing address probes ship with (paper §3.3).
[[nodiscard]] net::IPv4Address testing_address();

}  // namespace dynaddr::atlas

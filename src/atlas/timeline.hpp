#pragma once

#include <optional>
#include <vector>

#include "atlas/datasets.hpp"
#include "netcore/time.hpp"

namespace dynaddr::atlas {

/// Why a probe (re)booted. Ground truth only — the analysis layer never
/// sees this; tests use it to check inferences.
enum class RebootCause {
    InitialPowerOn,
    PowerCycle,           ///< CPE/probe lost and regained power
    Firmware,             ///< reboot-to-install after a dropped connection
    MemoryFragmentation,  ///< v1/v2 reboot triggered by a new TCP connection
};

/// One interval during which the CPE held a WAN address.
struct AddressEpoch {
    net::TimeInterval when;
    PeerAddress address;
};

/// A probe boot (ground truth).
struct BootEvent {
    net::TimePoint at;  ///< instant power returned / reboot began
    RebootCause cause = RebootCause::InitialPowerOn;
};

/// Ground-truth record of everything that happened to one probe and its
/// CPE during a simulation. The CPE and Probe models append to it as the
/// simulation runs; dataset emitters and validation tests read it after
/// `finalize()`.
///
/// Builder methods must be called in non-decreasing time order; intervals
/// must be opened before they are closed. finalize() closes any interval
/// still open at the end of the simulated window.
class Timeline {
public:
    explicit Timeline(ProbeId probe) : probe_(probe) {}

    [[nodiscard]] ProbeId probe() const { return probe_; }

    // -- builders ---------------------------------------------------------

    /// CPE acquired (or changed to) `address` at `t`; closes any open epoch.
    void set_address(net::TimePoint t, PeerAddress address);

    /// CPE lost its WAN address at `t`.
    void clear_address(net::TimePoint t);

    /// Probe stopped running (power cut or reboot start).
    void probe_down_begin(net::TimePoint t);

    /// Probe finished booting and is running again.
    void probe_down_end(net::TimePoint t);

    /// Access network failed / recovered at the CPE.
    void net_down_begin(net::TimePoint t);
    void net_down_end(net::TimePoint t);

    /// Probe began booting at `t` for `cause`.
    void record_boot(net::TimePoint t, RebootCause cause);

    /// Closes open intervals at the end of the observation window and
    /// freezes the timeline for queries.
    void finalize(net::TimePoint end);

    // -- queries (valid after finalize) ------------------------------------

    [[nodiscard]] bool probe_up(net::TimePoint t) const;
    [[nodiscard]] bool net_up(net::TimePoint t) const;
    [[nodiscard]] std::optional<PeerAddress> address_at(net::TimePoint t) const;

    /// Probe can reach the Internet: running, network up, address held.
    [[nodiscard]] bool communicable(net::TimePoint t) const;

    /// Every instant where state changed — used by the k-root emitter to
    /// place dense sampling windows. Sorted ascending, deduplicated.
    [[nodiscard]] std::vector<net::TimePoint> event_times() const;

    /// Ground-truth address changes: transitions between consecutive
    /// epochs with different addresses (regardless of the gap between
    /// them). Pairs of (time of new epoch, old address, new address).
    struct AddressChange {
        net::TimePoint at;
        PeerAddress from;
        PeerAddress to;
    };
    [[nodiscard]] std::vector<AddressChange> address_changes() const;

    [[nodiscard]] const std::vector<AddressEpoch>& epochs() const { return epochs_; }
    [[nodiscard]] const std::vector<net::TimeInterval>& probe_down_intervals() const {
        return probe_down_;
    }
    [[nodiscard]] const std::vector<net::TimeInterval>& net_down_intervals() const {
        return net_down_;
    }
    [[nodiscard]] const std::vector<BootEvent>& boots() const { return boots_; }
    [[nodiscard]] bool finalized() const { return finalized_; }

private:
    static bool in_any(const std::vector<net::TimeInterval>& intervals,
                       net::TimePoint t);

    ProbeId probe_;
    std::vector<AddressEpoch> epochs_;
    std::vector<net::TimeInterval> probe_down_;
    std::vector<net::TimeInterval> net_down_;
    std::vector<BootEvent> boots_;
    std::optional<net::TimePoint> open_epoch_start_;
    std::optional<PeerAddress> open_epoch_address_;
    std::optional<net::TimePoint> open_probe_down_;
    std::optional<net::TimePoint> open_net_down_;
    bool finalized_ = false;
};

}  // namespace dynaddr::atlas

#include "atlas/kroot.hpp"

#include <algorithm>

#include "netcore/error.hpp"

namespace dynaddr::atlas {

namespace {

/// The last instant <= t at which the probe was communicable, exploiting
/// that state is piecewise-constant between timeline events. Returns
/// nullopt when the probe was never communicable before t.
std::optional<net::TimePoint> last_communicable_at_or_before(
    const Timeline& timeline, const std::vector<net::TimePoint>& events,
    net::TimePoint t) {
    if (timeline.communicable(t)) return t;
    auto it = std::upper_bound(events.begin(), events.end(), t);
    while (it != events.begin()) {
        --it;
        const net::TimePoint boundary = *it;
        // The segment ending at `boundary`; sample just inside it.
        if (timeline.communicable(boundary - net::Duration::seconds(1)))
            return boundary;
    }
    return std::nullopt;
}

}  // namespace

std::vector<KRootPingRecord> emit_kroot_records(const Timeline& timeline,
                                                net::TimeInterval window,
                                                const KRootSamplingPolicy& policy,
                                                rng::Stream rng) {
    if (!timeline.finalized()) throw Error("timeline must be finalized");
    if (policy.dense_cadence.count() <= 0 || policy.base_cadence.count() <= 0)
        throw Error("cadences must be positive");
    if (policy.base_cadence.count() % policy.dense_cadence.count() != 0)
        throw Error("base cadence must be a multiple of the dense cadence");

    const std::vector<net::TimePoint> events = timeline.event_times();

    // Merge dense windows around events.
    std::vector<net::TimeInterval> dense;
    for (net::TimePoint e : events) {
        const net::TimeInterval ivl{e - policy.dense_window, e + policy.dense_window};
        if (!dense.empty() && ivl.begin <= dense.back().end)
            dense.back().end = std::max(dense.back().end, ivl.end);
        else
            dense.push_back(ivl);
    }

    // Build the emission instants: sparse grid everywhere + dense grid
    // inside dense windows. Grids are anchored at window.begin so the
    // sparse grid is a subset of the dense one.
    const std::int64_t t0 = window.begin.unix_seconds();
    const std::int64_t d = policy.dense_cadence.count();
    auto align_up = [&](net::TimePoint t) {
        std::int64_t offset = t.unix_seconds() - t0;
        if (offset < 0) offset = 0;
        return net::TimePoint{t0 + (offset + d - 1) / d * d};
    };

    std::vector<net::TimePoint> instants;
    for (net::TimePoint t = window.begin; t < window.end;
         t += policy.base_cadence)
        instants.push_back(t);
    for (const auto& ivl : dense)
        for (net::TimePoint t = align_up(ivl.begin); t < ivl.end && t < window.end;
             t += policy.dense_cadence)
            if (t >= window.begin) instants.push_back(t);
    std::sort(instants.begin(), instants.end());
    instants.erase(std::unique(instants.begin(), instants.end()), instants.end());

    std::vector<KRootPingRecord> records;
    records.reserve(instants.size());
    for (net::TimePoint t : instants) {
        if (!timeline.probe_up(t)) continue;  // no probe, no measurement
        KRootPingRecord record;
        record.probe = timeline.probe();
        record.timestamp = t;
        record.sent = 3;
        const bool reachable = timeline.communicable(t);
        if (reachable) {
            record.success = rng.bernoulli(policy.partial_loss_probability)
                                 ? int(rng.uniform_int(1, 2))
                                 : 3;
            // Synced within the last reporting interval.
            record.lts_seconds = rng.uniform_int(10, 235);
        } else {
            record.success = 0;
            auto last = last_communicable_at_or_before(timeline, events, t);
            const net::TimePoint since = last.value_or(window.begin);
            record.lts_seconds = (t - since).count() + rng.uniform_int(0, 235);
        }
        records.push_back(record);
    }
    return records;
}

}  // namespace dynaddr::atlas

#include "atlas/probe.hpp"

#include <algorithm>

#include "atlas/controller.hpp"
#include "netcore/error.hpp"

namespace dynaddr::atlas {

Probe::Probe(ProbeConfig config, sim::Simulation& sim, rng::Stream rng,
             Controller& controller, Timeline& timeline)
    : config_(config),
      sim_(&sim),
      rng_(rng),
      controller_(&controller),
      timeline_(&timeline) {
    if (timeline.probe() != config.id) throw Error("timeline/probe id mismatch");
    // The probe is down until first powered on.
    timeline_->probe_down_begin(sim_->now());
}

void Probe::power_on(RebootCause cause) {
    if (state_ != State::Off) return;
    begin_boot(cause, /*installing_firmware=*/false);
}

void Probe::power_off() {
    if (state_ == State::Off) return;
    if (connection_) {
        const net::TimePoint break_at = impaired_since_.value_or(sim_->now());
        close_connection(break_at - draw(net::Duration{0}, config_.end_jitter_max));
    }
    clear_impairment();
    if (connect_event_) {
        sim_->cancel(*connect_event_);
        connect_event_.reset();
    }
    if (boot_event_) {
        sim_->cancel(*boot_event_);
        boot_event_.reset();
    }
    if (frag_event_) {
        sim_->cancel(*frag_event_);
        frag_event_.reset();
    }
    state_ = State::Off;
    timeline_->probe_down_begin(sim_->now());
}

void Probe::wan_update(std::optional<PeerAddress> address) {
    wan_ = address;
    if (state_ != State::Running) return;

    if (connection_) {
        if (address && *address == connection_->address) {
            // Connectivity restored on the same address before TCP gave
            // up: the connection survives; no log entry.
            clear_impairment();
        } else {
            // Address changed or connectivity lost: the connection is
            // logically dead; TCP will notice after retransmission
            // exhaustion.
            begin_impairment();
        }
        return;
    }
    if (address) schedule_connect_attempt();
}

void Probe::firmware_released() { pending_firmware_ = true; }

void Probe::force_firmware_install() {
    if (!pending_firmware_ || state_ != State::Running) return;
    if (connection_) {
        // Closing the connection triggers the pending install itself.
        clear_impairment();
        close_connection(sim_->now() -
                         draw(net::Duration{0}, config_.end_jitter_max));
        return;
    }
    reboot(RebootCause::Firmware);
}

void Probe::flush_open_connection(net::TimePoint end) {
    if (!connection_) return;
    ConnectionLogEntry entry;
    entry.probe = config_.id;
    entry.start = connection_->start;
    entry.end = std::max(connection_->start, impaired_since_.value_or(end));
    entry.address = connection_->address;
    controller_->record_connection(entry);
}

void Probe::begin_boot(RebootCause cause, bool installing_firmware) {
    state_ = State::Booting;
    timeline_->record_boot(sim_->now(), cause);
    last_boot_ = sim_->now();
    net::Duration boot_time = draw(config_.boot_min, config_.boot_max);
    if (installing_firmware)
        boot_time += draw(config_.firmware_install_min, config_.firmware_install_max);
    boot_event_ = sim_->after(boot_time, [this](net::TimePoint) {
        boot_event_.reset();
        finish_boot();
    });
}

void Probe::finish_boot() {
    state_ = State::Running;
    timeline_->probe_down_end(sim_->now());
    if (wan_) schedule_connect_attempt();
}

void Probe::reboot(RebootCause cause) {
    if (state_ == State::Off) return;
    if (connection_)
        close_connection(sim_->now() - draw(net::Duration{0}, config_.end_jitter_max));
    clear_impairment();
    if (connect_event_) {
        sim_->cancel(*connect_event_);
        connect_event_.reset();
    }
    if (boot_event_) {
        sim_->cancel(*boot_event_);
        boot_event_.reset();
    }
    if (frag_event_) {
        sim_->cancel(*frag_event_);
        frag_event_.reset();
    }
    const bool installing = cause == RebootCause::Firmware;
    if (installing) pending_firmware_ = false;
    timeline_->probe_down_begin(sim_->now());
    begin_boot(cause, installing);
}

void Probe::close_connection(net::TimePoint last_data) {
    if (!connection_) return;
    ConnectionLogEntry entry;
    entry.probe = config_.id;
    entry.start = connection_->start;
    entry.end = std::max(connection_->start, last_data);
    entry.address = connection_->address;
    controller_->record_connection(entry);
    connection_.reset();
    // A dropped connection is the trigger for installing pending firmware
    // (paper §5.2: "when a probe's TCP connection to the central
    // controller breaks, the probe will reboot and install").
    if (pending_firmware_ && state_ == State::Running) {
        clear_impairment();
        reboot(RebootCause::Firmware);
    }
}

void Probe::begin_impairment() {
    if (impaired_since_) return;
    impaired_since_ = sim_->now();
    give_up_event_ = sim_->after(draw(config_.tcp_timeout_min, config_.tcp_timeout_max),
                                 [this](net::TimePoint) {
                                     give_up_event_.reset();
                                     on_tcp_give_up();
                                 });
}

void Probe::clear_impairment() {
    impaired_since_.reset();
    if (give_up_event_) {
        sim_->cancel(*give_up_event_);
        give_up_event_.reset();
    }
}

void Probe::on_tcp_give_up() {
    if (!connection_ || !impaired_since_) return;
    const net::TimePoint last_data =
        *impaired_since_ - draw(net::Duration{0}, config_.end_jitter_max);
    impaired_since_.reset();
    close_connection(last_data);  // may reboot for firmware
    if (state_ == State::Running && wan_) schedule_connect_attempt();
}

void Probe::schedule_connect_attempt() {
    if (connect_event_ || connection_) return;
    connect_event_ = sim_->after(draw(net::Duration{0}, config_.reconnect_jitter_max),
                                 [this](net::TimePoint) {
                                     connect_event_.reset();
                                     try_connect();
                                 });
}

void Probe::try_connect() {
    if (state_ != State::Running || connection_ || !wan_) return;
    connection_ = Connection{sim_->now(), *wan_};
    controller_->record_uptime(
        {config_.id, sim_->now(),
         std::uint64_t((sim_->now() - last_boot_).count())});
    if (config_.version != ProbeVersion::V3 &&
        rng_.bernoulli(config_.frag_reboot_probability)) {
        // Old hardware: the fresh TCP connection fragments memory and the
        // probe falls over shortly after.
        frag_event_ = sim_->after(
            draw(net::Duration::seconds(10), net::Duration::seconds(120)),
            [this](net::TimePoint) {
                frag_event_.reset();
                reboot(RebootCause::MemoryFragmentation);
            });
    }
}

net::Duration Probe::draw(net::Duration lo, net::Duration hi) {
    if (hi <= lo) return lo;
    return net::Duration{rng_.uniform_int(lo.count(), hi.count())};
}

}  // namespace dynaddr::atlas

#pragma once

#include <vector>

#include "atlas/datasets.hpp"
#include "netcore/rng.hpp"

namespace dynaddr::atlas {

/// Connection-log behaviours that the paper's Table 2 filtering pipeline
/// must recognize and discard (or specially handle). These probes do not
/// need the full CPE/outage machinery — their logs are generated directly
/// with the observable signature of each behaviour.
enum class SpecialBehaviour {
    /// One IPv4 address all year; occasional reconnects, never a change.
    NeverChanged,
    /// Alternates IPv4/IPv6 connections; the v4 address changes under the
    /// covers but consecutive-v4 runs are rare, as the paper observes.
    DualStack,
    /// Connects exclusively over IPv6.
    Ipv6Only,
    /// Two upstreams: one fixed address and one that changes over time,
    /// strictly alternating between connections — the behavioural
    /// multihomed signature the paper derived from tagged probes.
    MultihomedAlternating,
    /// First connection from the RIPE NCC testing address 193.0.0.78,
    /// then one stable address (no further change all year).
    TestingAddressThenStable,
};

/// Generation parameters for one special probe.
struct SpecialProbeSpec {
    ProbeId id = 0;
    SpecialBehaviour behaviour = SpecialBehaviour::NeverChanged;
    /// Base IPv4 address this probe's synthetic addresses derive from.
    net::IPv4Address base_address;
    /// Mean time between reconnections (exponential).
    net::Duration mean_session = net::Duration::hours(36);
    /// RFC 4941 privacy extensions for the probe's IPv6 side: the
    /// temporary interface identifier rotates daily. When false the probe
    /// keeps one stable (EUI-64-style) identifier. Plonka & Berger (cited
    /// by the paper) found ~90 % of client IPv6 addresses ephemeral, so
    /// generators default to on.
    bool v6_privacy_extensions = true;
};

/// Generates a year (or any window) of connection-log entries exhibiting
/// the requested behaviour. Entries are in time order with the paper's
/// typical ~20-minute inter-connection gaps.
std::vector<ConnectionLogEntry> generate_special_probe_log(
    const SpecialProbeSpec& spec, net::TimeInterval window, rng::Stream rng);

}  // namespace dynaddr::atlas

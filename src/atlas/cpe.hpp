#pragma once

#include <memory>
#include <optional>

#include "atlas/probe.hpp"
#include "atlas/timeline.hpp"
#include "dhcp/client.hpp"
#include "ppp/session.hpp"
#include "sim/cause_ledger.hpp"

namespace dynaddr::atlas {

/// CPE behaviour parameters.
struct CpeConfig {
    enum class Wan { Dhcp, Ppp };
    Wan wan = Wan::Dhcp;
    /// The probe draws USB power from the CPE and power-cycles with it
    /// (the typical install the paper relies on for fate sharing). When
    /// false the probe has its own supply and survives CPE power cuts —
    /// the paper's false-negative scenario.
    bool probe_usb_powered = true;
    /// PPP privacy feature: disconnect/reconnect daily at this UTC hour
    /// (minute offset drawn once per CPE), so the address change lands in
    /// a fixed night window (paper Figure 5).
    std::optional<int> daily_reconnect_hour;
    /// CPE boot time after power returns, before WAN dialing starts.
    net::Duration boot_min = net::Duration::seconds(30);
    net::Duration boot_max = net::Duration::seconds(120);
    dhcp::ClientConfig dhcp;
    ppp::SessionConfig ppp;
};

/// A customer-premises router with one WAN interface (DHCP or PPPoE) and
/// a RIPE Atlas probe behind it.
///
/// The CPE owns the WAN client, forwards usable-connectivity changes to
/// the probe, applies injected power/network outages, and writes ground
/// truth (address epochs, network-down intervals) to the Timeline.
class Cpe {
public:
    /// Exactly one of `dhcp_server` / `radius` must be non-null, matching
    /// `config.wan`. All references must outlive the CPE.
    Cpe(CpeConfig config, pool::ClientId subscriber, sim::Simulation& sim,
        rng::Stream rng, Probe& probe, Timeline& timeline,
        dhcp::Server* dhcp_server, ppp::RadiusServer* radius);

    Cpe(const Cpe&) = delete;
    Cpe& operator=(const Cpe&) = delete;

    /// Initial installation: powers CPE and probe on at the current time.
    void start();

    // -- injected outages ---------------------------------------------------
    // `site` labels the outage's origin in the cause ledger (which
    // schedule or fault produced it); it changes nothing behaviourally.
    void power_fail(sim::CauseSite site = sim::CauseSite::Unspecified);
    void power_restore();
    void net_fail(sim::CauseSite site = sim::CauseSite::Unspecified);
    void net_restore();

    /// Moves the subscriber to a different ISP backend (cross-AS movers in
    /// the paper's Table 2). Drops the current WAN session and redials
    /// against the new server.
    void switch_backend(dhcp::Server* dhcp_server, ppp::RadiusServer* radius,
                        CpeConfig::Wan wan);

    [[nodiscard]] std::optional<net::IPv4Address> wan_address() const;
    [[nodiscard]] bool powered() const { return powered_; }
    [[nodiscard]] bool network_up() const { return net_up_; }

private:
    void build_client();
    void on_acquired(net::IPv4Address address);
    void on_lost();
    /// Reports the WAN loss to the cause ledger, mapping protocol loss
    /// reasons that are themselves definitive root causes.
    void ledger_lost(sim::CauseKind kind, sim::CauseSite site);
    void schedule_daily_reconnect();
    [[nodiscard]] bool reachable() const { return powered_ && booted_ && net_up_; }

    CpeConfig config_;
    pool::ClientId subscriber_;
    sim::Simulation* sim_;
    rng::Stream rng_;
    Probe* probe_;
    Timeline* timeline_;
    dhcp::Server* dhcp_server_;
    ppp::RadiusServer* radius_;

    std::unique_ptr<dhcp::Client> dhcp_client_;
    std::unique_ptr<ppp::Session> ppp_session_;

    bool powered_ = false;
    bool booted_ = false;
    bool net_up_ = true;
    std::optional<net::IPv4Address> address_;
    std::optional<sim::EventId> boot_event_;
    std::optional<sim::EventId> reconnect_event_;
    net::Duration reconnect_minute_offset_{0};
};

}  // namespace dynaddr::atlas

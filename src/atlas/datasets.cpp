#include "atlas/datasets.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string_view>

#include "netcore/csv.hpp"
#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/obs/trace.hpp"
#include "sim/faults.hpp"

DYNADDR_LOG_MODULE(datasets);

namespace dynaddr::atlas {

namespace {

std::int64_t parse_i64(std::string_view text) {
    std::int64_t value = 0;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size())
        throw ParseError("bad integer '" + std::string(text) + "'");
    return value;
}

net::TimePoint parse_time(std::string_view text) {
    auto t = net::TimePoint::parse(text);
    if (!t) throw ParseError("bad timestamp '" + std::string(text) + "'");
    return *t;
}

std::ofstream open_out(const std::filesystem::path& path,
                       const char* dataset) {
    std::ofstream out(path);
    if (!out)
        throw Error("cannot open " + path.string() +
                    " for writing (dataset " + dataset + ")");
    return out;
}

std::ifstream open_in(const std::filesystem::path& path, const char* dataset) {
    std::ifstream in(path);
    if (!in)
        throw Error("cannot open " + path.string() +
                    " for reading (dataset " + dataset + ")");
    return in;
}

/// With CSV faults planned, slurps the stream and mutilates its data rows
/// (header preserved); the caller then parses leniently. Returns nullopt
/// when faults are off, keeping the strict streaming path untouched.
std::optional<std::istringstream> faulted_stream(std::istream& in) {
    sim::FaultInjector* injector = sim::fault_injector();
    if (injector == nullptr || !injector->plan().csv.any()) return std::nullopt;
    std::string text{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
    injector->corrupt_csv(text);
    return std::istringstream(std::move(text));
}

/// Iterates `reader`, handing each row to `fn`. Strict mode propagates
/// ParseError; lenient mode (fault-garbled input) drops the offending row
/// and keeps going — ScanReader::next_row() advances past a malformed row
/// before throwing, so resuming is safe.
template <typename Fn>
void for_each_row(csv::ScanReader& reader, bool lenient, Fn&& fn) {
    while (true) {
        try {
            const auto* row = reader.next_row();
            if (row == nullptr) return;
            fn(*row);
        } catch (const ParseError&) {
            if (!lenient) throw;
            obs::counter("faults.csv.rows_rejected").inc();
        }
    }
}

}  // namespace

std::string PeerAddress::to_string() const {
    return family == Family::IPv4 ? v4.to_string() : v6.to_string();
}

std::optional<PeerAddress> PeerAddress::parse(std::string_view text) {
    if (text.find(':') == std::string_view::npos) {
        auto parsed = net::IPv4Address::parse(text);
        if (!parsed) return std::nullopt;
        return ipv4(*parsed);
    }
    auto parsed = net::IPv6Address::parse(text);
    if (!parsed) return std::nullopt;
    return ipv6(*parsed);
}

void DatasetBundle::sort() {
    auto by_probe_time = [](const auto& a, const auto& b) {
        if (a.probe != b.probe) return a.probe < b.probe;
        return a.timestamp < b.timestamp;
    };
    std::sort(connection_log.begin(), connection_log.end(),
              [](const ConnectionLogEntry& a, const ConnectionLogEntry& b) {
                  if (a.probe != b.probe) return a.probe < b.probe;
                  return a.start < b.start;
              });
    std::sort(kroot_pings.begin(), kroot_pings.end(), by_probe_time);
    std::sort(uptime_records.begin(), uptime_records.end(), by_probe_time);
    std::sort(probes.begin(), probes.end(),
              [](const ProbeMetadata& a, const ProbeMetadata& b) {
                  return a.probe < b.probe;
              });
}

void write_connection_log_csv(std::ostream& out,
                              const std::vector<ConnectionLogEntry>& entries) {
    csv::Writer writer(out, {"probe", "start", "end", "address"});
    for (const auto& e : entries)
        writer.write_row({std::to_string(e.probe), e.start.to_string(),
                          e.end.to_string(), e.address.to_string()});
}

std::vector<ConnectionLogEntry> read_connection_log_csv(std::istream& in) {
    auto faulted = faulted_stream(in);
    csv::ScanReader reader(faulted ? *faulted : in);
    const auto c_probe = reader.column("probe");
    const auto c_start = reader.column("start");
    const auto c_end = reader.column("end");
    const auto c_addr = reader.column("address");
    std::vector<ConnectionLogEntry> entries;
    for_each_row(reader, faulted.has_value(), [&](const auto& row) {
        ConnectionLogEntry entry;
        entry.probe = ProbeId(parse_i64(row[c_probe]));
        entry.start = parse_time(row[c_start]);
        entry.end = parse_time(row[c_end]);
        auto addr = PeerAddress::parse(row[c_addr]);
        if (!addr)
            throw ParseError("bad peer address '" + std::string(row[c_addr]) +
                             "'");
        entry.address = *addr;
        entries.push_back(entry);
    });
    return entries;
}

void write_kroot_csv(std::ostream& out, const std::vector<KRootPingRecord>& records) {
    csv::Writer writer(out, {"probe", "timestamp", "sent", "success", "lts"});
    for (const auto& r : records)
        writer.write_row({std::to_string(r.probe), r.timestamp.to_string(),
                          std::to_string(r.sent), std::to_string(r.success),
                          std::to_string(r.lts_seconds)});
}

std::vector<KRootPingRecord> read_kroot_csv(std::istream& in) {
    auto faulted = faulted_stream(in);
    csv::ScanReader reader(faulted ? *faulted : in);
    const auto c_probe = reader.column("probe");
    const auto c_ts = reader.column("timestamp");
    const auto c_sent = reader.column("sent");
    const auto c_success = reader.column("success");
    const auto c_lts = reader.column("lts");
    std::vector<KRootPingRecord> records;
    for_each_row(reader, faulted.has_value(), [&](const auto& row) {
        KRootPingRecord r;
        r.probe = ProbeId(parse_i64(row[c_probe]));
        r.timestamp = parse_time(row[c_ts]);
        r.sent = int(parse_i64(row[c_sent]));
        r.success = int(parse_i64(row[c_success]));
        r.lts_seconds = parse_i64(row[c_lts]);
        records.push_back(r);
    });
    return records;
}

void write_uptime_csv(std::ostream& out, const std::vector<UptimeRecord>& records) {
    csv::Writer writer(out, {"probe", "timestamp", "uptime"});
    for (const auto& r : records)
        writer.write_row({std::to_string(r.probe), r.timestamp.to_string(),
                          std::to_string(r.uptime_seconds)});
}

std::vector<UptimeRecord> read_uptime_csv(std::istream& in) {
    auto faulted = faulted_stream(in);
    csv::ScanReader reader(faulted ? *faulted : in);
    const auto c_probe = reader.column("probe");
    const auto c_ts = reader.column("timestamp");
    const auto c_uptime = reader.column("uptime");
    std::vector<UptimeRecord> records;
    for_each_row(reader, faulted.has_value(), [&](const auto& row) {
        UptimeRecord r;
        r.probe = ProbeId(parse_i64(row[c_probe]));
        r.timestamp = parse_time(row[c_ts]);
        r.uptime_seconds = std::uint64_t(parse_i64(row[c_uptime]));
        records.push_back(r);
    });
    return records;
}

void write_probes_csv(std::ostream& out, const std::vector<ProbeMetadata>& probes) {
    csv::Writer writer(out, {"probe", "version", "country", "tags"});
    for (const auto& p : probes) {
        std::string tags;
        for (std::size_t i = 0; i < p.tags.size(); ++i) {
            if (i > 0) tags.push_back(';');
            tags += p.tags[i];
        }
        writer.write_row({std::to_string(p.probe), std::to_string(int(p.version)),
                          p.country_code, tags});
    }
}

std::vector<ProbeMetadata> read_probes_csv(std::istream& in) {
    auto faulted = faulted_stream(in);
    csv::ScanReader reader(faulted ? *faulted : in);
    const auto c_probe = reader.column("probe");
    const auto c_version = reader.column("version");
    const auto c_country = reader.column("country");
    const auto c_tags = reader.column("tags");
    std::vector<ProbeMetadata> probes;
    for_each_row(reader, faulted.has_value(), [&](const auto& row) {
        ProbeMetadata p;
        p.probe = ProbeId(parse_i64(row[c_probe]));
        const int version = int(parse_i64(row[c_version]));
        if (version < 1 || version > 3) throw ParseError("bad probe version");
        p.version = ProbeVersion(version);
        p.country_code = std::string(row[c_country]);
        const std::string_view tags = row[c_tags];
        std::size_t pos = 0;
        while (pos < tags.size()) {
            auto sep = tags.find(';', pos);
            if (sep == std::string_view::npos) sep = tags.size();
            if (sep > pos)
                p.tags.push_back(std::string(tags.substr(pos, sep - pos)));
            pos = sep + 1;
        }
        probes.push_back(p);
    });
    return probes;
}

void write_bundle(const std::string& directory, const DatasetBundle& bundle) {
    obs::ObsSpan span("datasets.write_bundle", "io",
                      &obs::latency_histogram("datasets.write_bundle"));
    const std::filesystem::path dir(directory);
    std::filesystem::create_directories(dir);
    {
        auto out = open_out(dir / "connection_log.csv", "connection_log");
        write_connection_log_csv(out, bundle.connection_log);
    }
    {
        auto out = open_out(dir / "kroot.csv", "kroot");
        write_kroot_csv(out, bundle.kroot_pings);
    }
    {
        auto out = open_out(dir / "uptime.csv", "uptime");
        write_uptime_csv(out, bundle.uptime_records);
    }
    {
        auto out = open_out(dir / "probes.csv", "probes");
        write_probes_csv(out, bundle.probes);
    }
}

DatasetBundle read_bundle(const std::string& directory) {
    obs::ObsSpan span("datasets.read_bundle", "io",
                      &obs::latency_histogram("datasets.read_bundle"));
    const std::filesystem::path dir(directory);
    DatasetBundle bundle;
    {
        obs::ObsSpan part("datasets.read_connection_log", "io");
        auto in = open_in(dir / "connection_log.csv", "connection_log");
        bundle.connection_log = read_connection_log_csv(in);
    }
    {
        obs::ObsSpan part("datasets.read_kroot", "io");
        auto in = open_in(dir / "kroot.csv", "kroot");
        bundle.kroot_pings = read_kroot_csv(in);
    }
    {
        obs::ObsSpan part("datasets.read_uptime", "io");
        auto in = open_in(dir / "uptime.csv", "uptime");
        bundle.uptime_records = read_uptime_csv(in);
    }
    {
        obs::ObsSpan part("datasets.read_probes", "io");
        auto in = open_in(dir / "probes.csv", "probes");
        bundle.probes = read_probes_csv(in);
    }
    obs::counter("datasets.rows_read")
        .inc(bundle.connection_log.size() + bundle.kroot_pings.size() +
             bundle.uptime_records.size() + bundle.probes.size());
    DYNADDR_LOG(Info, datasets, "read bundle from ", directory, ": ",
                bundle.connection_log.size(), " connections, ",
                bundle.kroot_pings.size(), " kroot pings, ",
                bundle.uptime_records.size(), " uptime records, ",
                bundle.probes.size(), " probes");
    return bundle;
}

net::IPv4Address testing_address() { return net::IPv4Address{193, 0, 0, 78}; }

}  // namespace dynaddr::atlas

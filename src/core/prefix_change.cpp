#include "core/prefix_change.hpp"

#include <algorithm>
#include <map>

namespace dynaddr::core {

PrefixChangeAnalysis analyze_prefix_changes(
    std::span<const ProbeChanges> probes, const AsMapping& mapping,
    const bgp::PrefixTable& table, const bgp::AsRegistry& registry,
    int min_rows_changes) {
    PrefixChangeAnalysis analysis;
    analysis.all.as_name = "All";
    std::map<std::uint32_t, Table7Row> rows;

    for (const auto& probe : probes) {
        auto asn = mapping.as_of(probe.probe);
        if (!asn) continue;  // multi-AS probes dropped per the paper
        Table7Row* row = nullptr;
        {
            auto [it, inserted] = rows.try_emplace(*asn);
            row = &it->second;
            if (inserted) {
                row->asn = *asn;
                if (auto info = registry.find(*asn)) {
                    row->as_name = info->name;
                    row->country = info->country_code;
                } else {
                    row->as_name = "AS" + std::to_string(*asn);
                }
            }
        }
        for (const auto& change : probe.changes) {
            const auto from_routed = table.routed_prefix(change.from, change.last_seen);
            const auto to_routed = table.routed_prefix(change.to, change.first_seen);
            const bool diff_bgp = from_routed && to_routed &&
                                  from_routed->prefix != to_routed->prefix;
            const bool diff_16 = net::IPv4Prefix::slash16_of(change.from) !=
                                 net::IPv4Prefix::slash16_of(change.to);
            const bool diff_8 = net::IPv4Prefix::slash8_of(change.from) !=
                                net::IPv4Prefix::slash8_of(change.to);
            for (Table7Row* target : {row, &analysis.all}) {
                ++target->total_changes;
                if (diff_bgp) ++target->diff_bgp;
                if (diff_16) ++target->diff_16;
                if (diff_8) ++target->diff_8;
            }
        }
    }

    for (auto& [asn, row] : rows)
        if (row.total_changes >= min_rows_changes)
            analysis.as_rows.push_back(std::move(row));
    std::sort(analysis.as_rows.begin(), analysis.as_rows.end(),
              [](const Table7Row& a, const Table7Row& b) {
                  if (a.total_changes != b.total_changes)
                      return a.total_changes > b.total_changes;
                  return a.asn < b.asn;
              });
    return analysis;
}

}  // namespace dynaddr::core

#pragma once

// Metrics plumbing shared by the batch (reference) and streaming
// pipelines. Both must bump the *same* counter objects — the obs smoke
// test and the Table2Funnel correctness test assert on the exported
// deltas, and those must not depend on which implementation ran.

#include "core/filtering.hpp"
#include "netcore/obs/metrics.hpp"

namespace dynaddr::core::detail {

/// Registered once at first use so run() pays only relaxed atomic ops.
/// Stage latency histograms feed both the metrics export and (via
/// ObsSpan) the trace.
struct PipelineMetrics {
    obs::Counter& runs = obs::counter("pipeline.runs");
    obs::Counter& probes_in = obs::counter("pipeline.probes_in");
    obs::Counter& probes_analyzable = obs::counter("pipeline.probes_analyzable");
    obs::Counter& changes_extracted = obs::counter("pipeline.changes_extracted");
    obs::Counter& outage_probes = obs::counter("pipeline.outage_probes");
    obs::Counter& reboots_detected = obs::counter("pipeline.reboots_detected");
    obs::Histogram& filter_latency =
        obs::latency_histogram("pipeline.stage.filter_probes");
    obs::Histogram& changes_latency =
        obs::latency_histogram("pipeline.stage.extract_changes");
    obs::Histogram& periodicity_latency =
        obs::latency_histogram("pipeline.stage.periodicity");
    obs::Histogram& prefix_latency =
        obs::latency_histogram("pipeline.stage.prefix_changes");
    obs::Histogram& reboot_latency =
        obs::latency_histogram("pipeline.stage.detect_reboots");
    obs::Histogram& outage_latency =
        obs::latency_histogram("pipeline.stage.outages");
    obs::Histogram& finalize_latency =
        obs::latency_histogram("pipeline.stage.finalize");
    obs::Histogram& run_latency = obs::latency_histogram("pipeline.run");
};

PipelineMetrics& pipeline_metrics();

/// Bumps the table2_funnel.* counters — the machine-readable Table 2.
void record_funnel(const FilterReport& report);

}  // namespace dynaddr::core::detail

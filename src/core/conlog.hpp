#pragma once

#include <span>
#include <vector>

#include "atlas/datasets.hpp"

namespace dynaddr::core {

/// One probe's connection history, sorted by connection start.
struct ProbeLog {
    atlas::ProbeId probe = 0;
    std::vector<atlas::ConnectionLogEntry> entries;
};

/// Groups a connection log by probe and sorts each probe's entries by
/// start time. Input order is irrelevant.
std::vector<ProbeLog> group_by_probe(
    std::span<const atlas::ConnectionLogEntry> entries);

}  // namespace dynaddr::core

#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>

#include "bgp/as_registry.hpp"
#include "core/address_change.hpp"
#include "core/total_time_fraction.hpp"

namespace dynaddr::core {

/// Continent of an ISO 3166-1 alpha-2 country code; nullopt when unknown.
/// Covers the countries appearing in RIPE Atlas deployments; extendable.
std::optional<bgp::Continent> continent_of_country(const std::string& code);

/// Figure 1: total-time-fraction distributions aggregated by continent.
/// Probes are located via the probe-archive country (the paper uses the
/// RIPE probe database the same way).
struct GeographyAnalysis {
    /// One TTF per continent that has at least one span.
    std::map<bgp::Continent, TotalTimeFraction> by_continent;
    /// Per-country aggregation (used for Figure 3-style country views).
    std::map<std::string, TotalTimeFraction> by_country;
    /// Probes whose country was missing or unknown.
    int unlocated_probes = 0;
};

GeographyAnalysis analyze_geography(
    std::span<const ProbeChanges> probes,
    std::span<const atlas::ProbeMetadata> metadata);

}  // namespace dynaddr::core

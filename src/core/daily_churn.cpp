#include "core/daily_churn.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "netcore/ascii_chart.hpp"
#include "core/report.hpp"

namespace dynaddr::core {

namespace {

/// Active IPv4 addresses per day index for one scope.
using DaySets = std::map<int, std::unordered_set<std::uint32_t>>;

void mark_active(DaySets& days, const atlas::ConnectionLogEntry& entry,
                 net::TimeInterval window) {
    const std::int64_t base = window.begin.unix_seconds();
    const std::int64_t first =
        std::max<std::int64_t>(0, (entry.start.unix_seconds() - base) / 86400);
    const std::int64_t last = std::min(
        (window.length().count() - 1) / 86400,
        (entry.end.unix_seconds() - base) / 86400);
    for (std::int64_t day = first; day <= last; ++day)
        days[int(day)].insert(entry.address.v4.value());
}

DailyChurnRow summarize(const DaySets& days) {
    DailyChurnRow row;
    double delta_sum = 0.0;
    double active_sum = 0.0;
    int active_days = 0;
    for (auto it = days.begin(); it != days.end(); ++it) {
        active_sum += double(it->second.size());
        ++active_days;
        auto next = std::next(it);
        if (next == days.end() || next->first != it->first + 1) continue;
        if (it->second.empty()) continue;
        int gone = 0;
        for (const auto addr : it->second)
            if (!next->second.contains(addr)) ++gone;
        const double delta = double(gone) / double(it->second.size());
        delta_sum += delta;
        row.max_delta = std::max(row.max_delta, delta);
        ++row.days;
    }
    row.mean_delta = row.days > 0 ? delta_sum / row.days : 0.0;
    row.mean_active = active_days > 0 ? active_sum / active_days : 0.0;
    return row;
}

}  // namespace

DailyChurnAnalysis analyze_daily_churn(std::span<const ProbeLog> logs,
                                       const AsMapping& mapping,
                                       const bgp::AsRegistry& registry,
                                       net::TimeInterval window) {
    DaySets all_days;
    std::map<std::uint32_t, DaySets> as_days;
    for (const auto& log : logs) {
        const auto asn = mapping.as_of(log.probe);
        for (const auto& entry : log.entries) {
            if (!entry.address.is_v4()) continue;
            if (entry.end < window.begin || entry.start >= window.end) continue;
            mark_active(all_days, entry, window);
            if (asn) mark_active(as_days[*asn], entry, window);
        }
    }

    DailyChurnAnalysis analysis;
    analysis.all = summarize(all_days);
    analysis.all.as_name = "All";
    for (const auto& [asn, days] : as_days) {
        DailyChurnRow row = summarize(days);
        row.asn = asn;
        if (auto info = registry.find(asn))
            row.as_name = info->name;
        else
            row.as_name = "AS" + std::to_string(asn);
        analysis.by_as.push_back(std::move(row));
    }
    std::sort(analysis.by_as.begin(), analysis.by_as.end(),
              [](const DailyChurnRow& a, const DailyChurnRow& b) {
                  if (a.mean_active != b.mean_active)
                      return a.mean_active > b.mean_active;
                  return a.asn < b.asn;
              });
    return analysis;
}

std::string render_daily_churn(const DailyChurnAnalysis& analysis) {
    std::vector<std::vector<std::string>> rows;
    auto fields = [](const DailyChurnRow& row) {
        return std::vector<std::string>{
            row.as_name,
            row.asn == 0 ? "-" : std::to_string(row.asn),
            std::to_string(row.days),
            fmt(row.mean_active, 1),
            fmt(100.0 * row.mean_delta, 1) + "%",
            fmt(100.0 * row.max_delta, 1) + "%"};
    };
    rows.push_back(fields(analysis.all));
    for (const auto& row : analysis.by_as) rows.push_back(fields(row));
    return chart::render_table({"AS", "ASN", "Day pairs", "Mean active",
                                "Mean daily churn", "Max"},
                               rows);
}

}  // namespace dynaddr::core

#pragma once

#include <span>
#include <vector>

#include "core/conlog.hpp"
#include "netcore/ipv4.hpp"
#include "netcore/time.hpp"

namespace dynaddr::core {

/// One detected address change: consecutive connections used different
/// IPv4 addresses (paper §3.1). The change happened somewhere inside
/// (last_seen, first_seen).
struct AddressChangeEvent {
    atlas::ProbeId probe = 0;
    net::TimePoint last_seen;   ///< end of the last connection from `from`
    net::TimePoint first_seen;  ///< start of the first connection from `to`
    net::IPv4Address from;
    net::IPv4Address to;
};

/// A fully-observed address tenure: the probe was first seen using the
/// address at `begin` and last seen at `end`, with known changes on both
/// sides. The paper excludes the first and last (censored) tenures, and so
/// does extract_changes.
struct AddressSpan {
    atlas::ProbeId probe = 0;
    net::IPv4Address address;
    net::TimePoint begin;  ///< start of the first connection in the run
    net::TimePoint end;    ///< end of the last connection in the run

    [[nodiscard]] net::Duration duration() const { return end - begin; }
};

/// Changes and interior spans extracted from one probe's log.
struct ProbeChanges {
    atlas::ProbeId probe = 0;
    std::vector<AddressChangeEvent> changes;
    std::vector<AddressSpan> spans;  ///< interior (uncensored) tenures only
    /// Σ(D): total observed address time across interior spans, seconds.
    net::Duration total_address_time{0};
};

/// Walks one probe's connection log, merging consecutive same-address
/// connections into runs, and reports every change plus the interior
/// spans. Non-IPv4 entries must have been filtered out already.
ProbeChanges extract_changes(const ProbeLog& log);

/// Quantizes a span duration for mode detection, in hours. Durations of
/// an hour or more snap to the nearest hour (the paper's modes are at
/// hour multiples and raw durations run ~25 min short of the period
/// because of the reconnect gap); sub-hour durations snap to the nearest
/// 5 minutes so short tenures keep resolution.
[[nodiscard]] double quantize_hours(net::Duration duration);

}  // namespace dynaddr::core

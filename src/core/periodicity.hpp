#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/as_registry.hpp"
#include "core/address_change.hpp"
#include "core/as_mapping.hpp"
#include "core/total_time_fraction.hpp"

namespace dynaddr::core {

/// Thresholds for periodic classification; defaults follow the paper §4.4.
struct PeriodicityConfig {
    /// A probe is periodic at duration d when f_d exceeds this.
    double probe_threshold = 0.25;
    /// An AS qualifies for Table 5 with at least this many probes that had
    /// an address change...
    int min_changed_probes = 5;
    /// ...of which at least this many are periodic at the same d.
    int min_periodic_probes = 3;
    /// Relative tolerance when testing MAX <= d and harmonic multiples
    /// (the paper uses d + 5%).
    double tolerance = 0.05;
    /// A probe must have at least this many tenures of duration d before
    /// d counts as its period. The paper's fraction threshold alone lets a
    /// stable probe with a handful of months-long tenures look "periodic"
    /// at its longest one; real periodicity repeats. (Methodological
    /// strengthening over the paper; set to 1 to reproduce its rule
    /// exactly.)
    int min_spans_at_period = 3;
};

/// Per-probe periodicity classification.
struct ProbePeriodicity {
    atlas::ProbeId probe = 0;
    int change_count = 0;
    /// Duration (quantized hours) carrying the largest total time
    /// fraction, when that fraction clears the threshold.
    std::optional<double> period_hours;
    /// f at period_hours (0 when not periodic).
    double fraction = 0.0;
    TotalTimeFraction ttf;
    /// Largest quantized span, hours.
    double max_span_hours = 0.0;
    /// All quantized spans, hours (for harmonic tests and histograms).
    std::vector<double> span_hours;
};

/// Classifies one probe. Always returns the TTF; period_hours is set only
/// when some duration's fraction exceeds the threshold.
ProbePeriodicity classify_probe(const ProbeChanges& changes,
                                const PeriodicityConfig& config = {});

/// True when every span is <= d(1+tol) or within d·tol of a multiple of d
/// — the paper's "Harmonic" column.
bool spans_harmonic_of(std::span<const double> span_hours, double d_hours,
                       double tolerance);

/// One row of the paper's Table 5.
struct Table5Row {
    std::uint32_t asn = 0;       ///< 0 for the "All" rows
    std::string as_name;         ///< "All" for the aggregate rows
    std::string country;
    double d_hours = 0.0;
    int probes_with_change = 0;  ///< N
    int periodic_probes = 0;     ///< f_d > 0.25
    double pct_over_half = 0.0;       ///< % of periodic with f_d > 0.5
    double pct_over_three_quarters = 0.0;  ///< % with f_d > 0.75
    double pct_max_le_d = 0.0;        ///< % whose MAX span <= d (+tol)
    double pct_harmonic = 0.0;        ///< % whose spans are all multiples of d
};

/// Full periodicity analysis output.
struct PeriodicityAnalysis {
    std::vector<ProbePeriodicity> probes;   ///< every analyzable probe
    std::vector<Table5Row> all_rows;        ///< "All" rows (d = 24 h, 168 h)
    std::vector<Table5Row> as_rows;         ///< qualifying (AS, d) rows,
                                            ///< sorted by periodic count desc
};

/// Runs the paper's §4.3-4.4 analysis: classify each probe, then build
/// Table 5. AS grouping uses single-AS probes only (the paper's
/// conservative AS-level choice); registry fills in names/countries.
PeriodicityAnalysis analyze_periodicity(std::span<const ProbeChanges> probes,
                                        const AsMapping& mapping,
                                        const bgp::AsRegistry& registry,
                                        const PeriodicityConfig& config = {});

/// Figure 4/5: for every span of (quantized) duration d_hours belonging to
/// the given probes, the UTC hour of day at which the span ended.
std::array<int, 24> sync_histogram(std::span<const ProbeChanges> probes,
                                   double d_hours);

}  // namespace dynaddr::core

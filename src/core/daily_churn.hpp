#pragma once

#include <span>
#include <string>
#include <vector>

#include "bgp/as_registry.hpp"
#include "core/as_mapping.hpp"
#include "core/conlog.hpp"

namespace dynaddr::core {

/// Day-over-day active-address churn, the metric of Richter et al.
/// (IMC 2016) that the paper's §8 cites: "the set of addresses observed
/// at a large CDN on one day differs from the set of addresses observed
/// on the next day by 8% on average". Here the vantage point is the
/// probe fleet: an address is active on a day when any of its
/// connections overlaps that day.
struct DailyChurnRow {
    std::uint32_t asn = 0;  ///< 0 for the "All" row
    std::string as_name;
    int days = 0;              ///< day pairs measured
    double mean_delta = 0.0;   ///< mean |S_d \ S_{d+1}| / |S_d|
    double max_delta = 0.0;
    double mean_active = 0.0;  ///< mean |S_d|
};

struct DailyChurnAnalysis {
    DailyChurnRow all;
    std::vector<DailyChurnRow> by_as;  ///< descending by mean_active
};

/// Computes per-AS and overall daily churn over `window` from analyzable
/// probe logs (single-AS probes feed their AS's row; every probe feeds
/// the All row). Days with an empty active set are skipped.
DailyChurnAnalysis analyze_daily_churn(std::span<const ProbeLog> logs,
                                       const AsMapping& mapping,
                                       const bgp::AsRegistry& registry,
                                       net::TimeInterval window);

/// Text rendering in the house table style.
std::string render_daily_churn(const DailyChurnAnalysis& analysis);

}  // namespace dynaddr::core

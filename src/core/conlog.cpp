#include "core/conlog.hpp"

#include <algorithm>
#include <unordered_map>

namespace dynaddr::core {

std::vector<ProbeLog> group_by_probe(
    std::span<const atlas::ConnectionLogEntry> entries) {
    std::unordered_map<atlas::ProbeId, std::size_t> index;
    std::vector<ProbeLog> logs;
    for (const auto& entry : entries) {
        auto [it, inserted] = index.try_emplace(entry.probe, logs.size());
        if (inserted) logs.push_back(ProbeLog{entry.probe, {}});
        logs[it->second].entries.push_back(entry);
    }
    for (auto& log : logs)
        std::sort(log.entries.begin(), log.entries.end(),
                  [](const atlas::ConnectionLogEntry& a,
                     const atlas::ConnectionLogEntry& b) {
                      if (a.start != b.start) return a.start < b.start;
                      return a.end < b.end;
                  });
    std::sort(logs.begin(), logs.end(),
              [](const ProbeLog& a, const ProbeLog& b) { return a.probe < b.probe; });
    return logs;
}

}  // namespace dynaddr::core

#include "core/attribution_audit.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "core/report.hpp"
#include "netcore/ascii_chart.hpp"
#include "netcore/obs/metrics.hpp"

namespace dynaddr::core {

namespace {

/// Is `kind` one of the classes the audit gates recall on?
bool gated(sim::CauseKind kind) {
    switch (expected_cause(kind)) {
        case ChangeCause::Periodic:
        case ChangeCause::NetworkOutage:
        case ChangeCause::PowerOutage:
        case ChangeCause::Administrative:
            return true;
        case ChangeCause::Unknown:
            return false;
    }
    return false;
}

}  // namespace

ChangeCause expected_cause(sim::CauseKind kind) {
    switch (kind) {
        case sim::CauseKind::SessionExpiry:
        case sim::CauseKind::LeaseExpiry:
        case sim::CauseKind::NightlyReconnect:
            return ChangeCause::Periodic;
        case sim::CauseKind::PowerOutage:
            return ChangeCause::PowerOutage;
        case sim::CauseKind::NetworkOutage:
            return ChangeCause::NetworkOutage;
        case sim::CauseKind::AdminRenumbering:
            return ChangeCause::Administrative;
        // The rest leave no signature in the emitted datasets: the
        // max-age cap is jittered (deliberately aperiodic), server
        // amnesia / exhaustion / message faults look like ordinary
        // reconnects, and a cross-AS move is a subscription change.
        case sim::CauseKind::MaxAgeEviction:
        case sim::CauseKind::CrossAsMove:
        case sim::CauseKind::ServerAmnesia:
        case sim::CauseKind::ServerDown:
        case sim::CauseKind::PoolExhausted:
        case sim::CauseKind::MessageFault:
        case sim::CauseKind::Unknown:
            return ChangeCause::Unknown;
    }
    return ChangeCause::Unknown;
}

double AttributionAudit::recall(ChangeCause expected) const {
    int detectable = 0;
    int correct = 0;
    for (const auto& row : kinds) {
        if (expected_cause(row.kind) != expected) continue;
        detectable += row.detectable;
        correct += row.correct;
    }
    return detectable == 0 ? 0.0 : double(correct) / detectable;
}

double AttributionAudit::precision(ChangeCause inferred) const {
    const int total = inferred_totals[std::size_t(inferred)];
    return total == 0 ? 0.0
                      : double(inferred_correct[std::size_t(inferred)]) / total;
}

double AttributionAudit::unknown_residual() const {
    return scored == 0
               ? 0.0
               : double(inferred_totals[std::size_t(ChangeCause::Unknown)]) /
                     scored;
}

AttributionAudit audit_attribution(const AnalysisResults& results,
                                   const bgp::PrefixTable& table,
                                   const bgp::AsRegistry& registry,
                                   const std::vector<sim::CauseRecord>& ledger,
                                   const AuditConfig& config) {
    AttributionAudit audit;
    audit.ledger_records = ledger.size();

    // Detector capability: with no k-root data in the bundle neither
    // outage detector can fire, so no outage record is detectable.
    for (const auto& [probe, outages] : results.network_outages)
        if (!outages.empty()) {
            audit.network_detector_active = true;
            break;
        }
    for (const auto& [probe, outages] : results.power_outages)
        if (!outages.empty()) {
            audit.power_detector_active = true;
            break;
        }

    // Inferred causes, grouped per probe (detailed output is probe-major
    // and in-probe change order already).
    const auto detailed =
        attribute_changes_detailed(results, table, config.attribution);
    std::unordered_map<std::uint64_t, std::pair<std::size_t, std::size_t>>
        change_range;  // probe -> [begin, end) into `detailed`
    for (std::size_t i = 0; i < detailed.size();) {
        std::size_t j = i;
        while (j < detailed.size() && detailed[j].probe == detailed[i].probe)
            ++j;
        change_range.emplace(detailed[i].probe, std::make_pair(i, j));
        i = j;
    }

    // Ledger records grouped per probe, in time order (ledger emission
    // order is simulation time, which is monotonic per client).
    std::unordered_map<std::uint64_t, std::vector<const sim::CauseRecord*>>
        records_by_probe;
    for (const auto& record : ledger)
        records_by_probe[record.probe].push_back(&record);
    for (auto& [probe, records] : records_by_probe)
        std::stable_sort(records.begin(), records.end(),
                         [](const sim::CauseRecord* a,
                            const sim::CauseRecord* b) { return a->at < b->at; });

    std::array<AuditKindRow, sim::kCauseKindCount> kind_rows;
    for (std::size_t k = 0; k < sim::kCauseKindCount; ++k)
        kind_rows[k].kind = sim::CauseKind(k);
    std::map<std::uint32_t, AuditAsRow> as_rows;

    // The §5 power detector only runs on v3 probes (v1/v2 reboot on new
    // TCP connections and would fake power cuts), so a power outage behind
    // a non-v3 probe is invisible to it by design and must not count
    // against recall. When the results carry no version metadata at all,
    // no probe passes the pipeline's own v3 gate either.
    auto power_capable = [&](atlas::ProbeId probe) {
        auto it = results.probe_versions.find(probe);
        return it != results.probe_versions.end() &&
               it->second == atlas::ProbeVersion::V3;
    };

    auto detectable = [&](const sim::CauseRecord& record) {
        switch (record.kind) {
            case sim::CauseKind::PowerOutage:
                return audit.power_detector_active &&
                       power_capable(record.probe) &&
                       record.root_duration >= config.min_power_outage;
            case sim::CauseKind::NetworkOutage:
                return audit.network_detector_active &&
                       record.root_duration >= config.min_network_outage;
            default:
                return true;
        }
    };

    auto mark_unobserved = [&](const sim::CauseRecord& record) {
        ++audit.unobserved;
        ++kind_rows[std::size_t(record.kind)].unobserved;
    };
    auto score = [&](const sim::CauseRecord& record,
                     const AttributedChange& change) {
        AuditKindRow& row = kind_rows[std::size_t(record.kind)];
        ++audit.scored;
        ++row.scored;
        ++row.inferred[std::size_t(change.cause)];
        ++audit.inferred_totals[std::size_t(change.cause)];
        const ChangeCause expected = expected_cause(record.kind);
        if (change.cause == expected)
            ++audit.inferred_correct[std::size_t(change.cause)];
        if (!detectable(record)) return;
        ++row.detectable;
        const bool correct = change.cause == expected;
        if (correct) ++row.correct;
        if (change.asn != 0) {
            auto [it, inserted] = as_rows.try_emplace(change.asn);
            if (inserted) {
                it->second.asn = change.asn;
                if (auto info = registry.find(change.asn))
                    it->second.as_name = info->name;
                else
                    it->second.as_name = "AS" + std::to_string(change.asn);
            }
            ++it->second.scored;
            ++it->second.detectable;
            if (correct) ++it->second.correct;
        }
    };

    for (auto& [probe, records] : records_by_probe) {
        const auto range_it = change_range.find(probe);
        if (range_it == change_range.end()) {
            // Probe filtered out (or never analyzable): nothing to join.
            for (const sim::CauseRecord* record : records)
                mark_unobserved(*record);
            continue;
        }
        std::size_t r = 0;
        for (std::size_t i = range_it->second.first;
             i < range_it->second.second; ++i) {
            const AttributedChange& change = detailed[i];
            const net::TimePoint begin =
                change.change.last_seen - config.match_slack;
            const net::TimePoint end =
                change.change.first_seen + config.match_slack;
            while (r < records.size() && records[r]->at < begin) {
                mark_unobserved(*records[r]);
                ++r;
            }
            const std::size_t first_in = r;
            while (r < records.size() && records[r]->at <= end) ++r;
            if (r == first_in) {
                ++audit.unmatched_changes;
                continue;
            }
            // The last record produced the address the probe woke up to;
            // earlier ones happened while it slept.
            for (std::size_t c = first_in; c + 1 < r; ++c) {
                ++audit.coalesced;
                ++kind_rows[std::size_t(records[c]->kind)].coalesced;
            }
            score(*records[r - 1], change);
        }
        for (; r < records.size(); ++r) mark_unobserved(*records[r]);
    }
    // Changes of probes the ledger never heard of (special probes have no
    // CPE behind them).
    for (const auto& entry : detailed)
        if (!records_by_probe.contains(entry.probe)) ++audit.unmatched_changes;

    for (const auto& row : kind_rows)
        if (row.total() > 0) audit.kinds.push_back(row);
    for (auto& [asn, row] : as_rows) audit.by_as.push_back(std::move(row));
    std::sort(audit.by_as.begin(), audit.by_as.end(),
              [](const AuditAsRow& a, const AuditAsRow& b) {
                  if (a.scored != b.scored) return a.scored > b.scored;
                  return a.asn < b.asn;
              });
    return audit;
}

void record_attribution_audit(const AttributionAudit& audit) {
    static const bool block_registered = [] {
        obs::metrics_block("attribution_audit");
        return true;
    }();
    (void)block_registered;
    auto add = [](const char* name, std::uint64_t value) {
        obs::counter(name).inc(value);
    };
    add("attribution_audit.records", audit.ledger_records);
    add("attribution_audit.scored", std::uint64_t(audit.scored));
    add("attribution_audit.coalesced", std::uint64_t(audit.coalesced));
    add("attribution_audit.unobserved", std::uint64_t(audit.unobserved));
    add("attribution_audit.unmatched_changes",
        std::uint64_t(audit.unmatched_changes));
    int detectable_total = 0;
    int correct_total = 0;
    struct ClassCounter {
        ChangeCause cause;
        const char* detectable;
        const char* correct;
    };
    static constexpr ClassCounter kClasses[] = {
        {ChangeCause::Periodic, "attribution_audit.periodic_detectable",
         "attribution_audit.periodic_correct"},
        {ChangeCause::NetworkOutage, "attribution_audit.network_detectable",
         "attribution_audit.network_correct"},
        {ChangeCause::PowerOutage, "attribution_audit.power_detectable",
         "attribution_audit.power_correct"},
        {ChangeCause::Administrative, "attribution_audit.admin_detectable",
         "attribution_audit.admin_correct"},
    };
    for (const auto& entry : kClasses) {
        int detectable = 0;
        int correct = 0;
        for (const auto& row : audit.kinds) {
            if (expected_cause(row.kind) != entry.cause) continue;
            detectable += row.detectable;
            correct += row.correct;
        }
        add(entry.detectable, std::uint64_t(detectable));
        add(entry.correct, std::uint64_t(correct));
        detectable_total += detectable;
        correct_total += correct;
    }
    add("attribution_audit.detectable", std::uint64_t(detectable_total));
    add("attribution_audit.correct", std::uint64_t(correct_total));
    add("attribution_audit.unknown_inferred",
        std::uint64_t(
            audit.inferred_totals[std::size_t(ChangeCause::Unknown)]));
}

std::string render_attribution_audit(const AttributionAudit& audit) {
    std::string out;
    out += "Attribution audit: " + std::to_string(audit.ledger_records) +
           " ledger records, " + std::to_string(audit.scored) + " scored (" +
           std::to_string(audit.coalesced) + " coalesced, " +
           std::to_string(audit.unobserved) + " unobserved, " +
           std::to_string(audit.unmatched_changes) +
           " changes without ground truth)\n";
    out += std::string("Detectors: network ") +
           (audit.network_detector_active ? "active" : "no data") + ", power " +
           (audit.power_detector_active ? "active" : "no data") + "\n";

    std::vector<std::vector<std::string>> rows;
    for (const auto& row : audit.kinds) {
        auto inferred = [&](ChangeCause cause) {
            return std::to_string(row.inferred[std::size_t(cause)]);
        };
        rows.push_back({sim::cause_kind_name(row.kind),
                        std::to_string(row.total()),
                        std::to_string(row.scored),
                        std::to_string(row.unobserved),
                        std::to_string(row.detectable),
                        inferred(ChangeCause::Periodic),
                        inferred(ChangeCause::NetworkOutage),
                        inferred(ChangeCause::PowerOutage),
                        inferred(ChangeCause::Administrative),
                        inferred(ChangeCause::Unknown),
                        gated(row.kind) && row.detectable > 0
                            ? fmt(100.0 * row.recall(), 1) + "%"
                            : std::string("-")});
    }
    out += chart::render_table({"True cause", "Records", "Scored", "Unobs",
                                "Detect", "Periodic", "Network", "Power",
                                "Admin", "Unknown", "Recall"},
                               rows);

    auto class_line = [&](const char* label, ChangeCause cause) {
        int detectable = 0;
        for (const auto& row : audit.kinds)
            if (expected_cause(row.kind) == cause) detectable += row.detectable;
        if (detectable == 0 &&
            audit.inferred_totals[std::size_t(cause)] == 0)
            return std::string(label) + ": no data\n";
        return std::string(label) + ": recall " +
               fmt(100.0 * audit.recall(cause), 1) + "%, precision " +
               fmt(100.0 * audit.precision(cause), 1) + "%\n";
    };
    out += class_line("periodic", ChangeCause::Periodic);
    out += class_line("network outage", ChangeCause::NetworkOutage);
    out += class_line("power outage", ChangeCause::PowerOutage);
    out += class_line("administrative", ChangeCause::Administrative);
    out += "unknown residual: " + fmt(100.0 * audit.unknown_residual(), 1) +
           "% of scored changes\n";

    if (!audit.by_as.empty()) {
        std::vector<std::vector<std::string>> as_rows;
        for (const auto& row : audit.by_as)
            as_rows.push_back({row.as_name, std::to_string(row.asn),
                               std::to_string(row.scored),
                               std::to_string(row.correct),
                               fmt(100.0 * row.accuracy(), 1) + "%"});
        out += chart::render_table({"AS", "ASN", "Scored", "Correct", "Accuracy"},
                                   as_rows);
    }
    return out;
}

}  // namespace dynaddr::core

#include "core/address_change.hpp"

#include <cmath>

namespace dynaddr::core {

ProbeChanges extract_changes(const ProbeLog& log) {
    ProbeChanges result;
    result.probe = log.probe;

    // Build address runs: consecutive entries with the same IPv4 address.
    struct Run {
        net::IPv4Address address;
        net::TimePoint first_start;
        net::TimePoint last_end;
    };
    std::vector<Run> runs;
    for (const auto& entry : log.entries) {
        if (!entry.address.is_v4()) continue;
        if (!runs.empty() && runs.back().address == entry.address.v4) {
            runs.back().last_end = entry.end;
        } else {
            runs.push_back({entry.address.v4, entry.start, entry.end});
        }
    }

    for (std::size_t i = 1; i < runs.size(); ++i)
        result.changes.push_back({log.probe, runs[i - 1].last_end,
                                  runs[i].first_start, runs[i - 1].address,
                                  runs[i].address});

    // Interior runs only: the first run's start and the last run's end are
    // censored (we never saw those addresses assigned or withdrawn).
    for (std::size_t i = 1; i + 1 < runs.size(); ++i) {
        AddressSpan span{log.probe, runs[i].address, runs[i].first_start,
                         runs[i].last_end};
        result.total_address_time += span.duration();
        result.spans.push_back(span);
    }
    return result;
}

double quantize_hours(net::Duration duration) {
    const double hours = duration.to_hours();
    if (hours >= 1.0) return std::round(hours);
    // Nearest 5 minutes = 1/12 hour.
    return std::round(hours * 12.0) / 12.0;
}

}  // namespace dynaddr::core

#include "core/as_mapping.hpp"

#include <unordered_set>

namespace dynaddr::core {

AsMapping map_probes_to_as(std::span<const ProbeLog> logs,
                           const bgp::PrefixTable& table) {
    AsMapping mapping;
    for (const auto& log : logs) {
        std::unordered_set<std::uint32_t> ases;
        for (const auto& entry : log.entries) {
            if (!entry.address.is_v4()) continue;
            if (auto asn = table.origin_as(entry.address.v4, entry.start))
                ases.insert(*asn);
        }
        if (ases.empty())
            mapping.unmapped.insert(log.probe);
        else if (ases.size() == 1)
            mapping.single_as.emplace(log.probe, *ases.begin());
        else
            mapping.multi_as.insert(log.probe);
    }
    return mapping;
}

}  // namespace dynaddr::core

#include "core/pipeline.hpp"

#include <algorithm>
#include <span>
#include <unordered_map>

#include "core/pipeline_internal.hpp"
#include "core/streaming_pipeline.hpp"
#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/obs/trace.hpp"
#include "netcore/parallel.hpp"

DYNADDR_LOG_MODULE(pipeline);

namespace dynaddr::core {

namespace detail {

PipelineMetrics& pipeline_metrics() {
    static PipelineMetrics metrics;
    return metrics;
}

namespace {

/// table2_funnel counter suffix per filter category. Registered as a
/// metrics block so the JSON export groups them.
const char* funnel_name(ProbeCategory category) {
    switch (category) {
        case ProbeCategory::Analyzable: return "table2_funnel.analyzable";
        case ProbeCategory::NeverChanged: return "table2_funnel.never_changed";
        case ProbeCategory::DualStack: return "table2_funnel.dual_stack";
        case ProbeCategory::Ipv6Only: return "table2_funnel.ipv6_only";
        case ProbeCategory::TaggedMultihomed:
            return "table2_funnel.tagged_multihomed";
        case ProbeCategory::AlternatingMultihomed:
            return "table2_funnel.alternating_multihomed";
        case ProbeCategory::TestingAddressOnly:
            return "table2_funnel.testing_address_only";
    }
    return "table2_funnel.unknown";
}

}  // namespace

void record_funnel(const FilterReport& report) {
    static const bool block_registered = [] {
        obs::metrics_block("table2_funnel");
        return true;
    }();
    (void)block_registered;
    obs::counter("table2_funnel.total").inc(std::uint64_t(report.total()));
    for (const auto& [category, count] : report.counts)
        obs::counter(funnel_name(category)).inc(std::uint64_t(count));
}

}  // namespace detail

const ProbeChanges* AnalysisResults::changes_of(atlas::ProbeId probe) const {
    auto it = std::lower_bound(changes.begin(), changes.end(), probe,
                               [](const ProbeChanges& c, atlas::ProbeId id) {
                                   return c.probe < id;
                               });
    if (it == changes.end() || it->probe != probe) return nullptr;
    return &*it;
}

DurationBinAnalysis duration_bins_for_as(
    const AnalysisResults& results, std::uint32_t asn,
    std::optional<DetectedOutage::Kind> kind) {
    DurationBinAnalysis bins;
    auto feed = [&](const std::map<atlas::ProbeId, std::vector<OutageOutcome>>&
                        outcomes) {
        for (const auto& [probe, list] : outcomes) {
            auto probe_as = results.mapping.as_of(probe);
            if (!probe_as || *probe_as != asn) continue;
            for (const auto& outcome : list) bins.add(outcome);
        }
    };
    if (!kind || *kind == DetectedOutage::Kind::Network)
        feed(results.network_outcomes);
    if (!kind || *kind == DetectedOutage::Kind::Power)
        feed(results.power_outcomes);
    return bins;
}

namespace {

// ---------------------------------------------------------------------------
// Per-probe stage functions. Each is a pure function of one probe's data so
// the pool can run probes in any order; the caller merges the pre-sized
// per-shard slots in shard order, keeping output identical for any thread
// count (see par::ThreadPool's determinism contract).
// ---------------------------------------------------------------------------

/// §5 output for one probe: everything the per-probe outage loop derives.
struct ProbeOutageAnalysis {
    bool present = false;  ///< false when the probe has no k-root records
    std::vector<DetectedOutage> network;
    std::vector<DetectedOutage> power;
    std::vector<OutageOutcome> network_outcomes;
    std::vector<OutageOutcome> power_outcomes;
    ProbeCondProb tally;
};

/// The §5 outage stage for one analyzable probe. `version` is nullopt when
/// the probe is absent from the probe archive; such probes keep network
/// detection but are excluded from power detection — the paper (§5.1) only
/// trusts v3 uptime semantics, and an unknown probe may be v1/v2.
ProbeOutageAnalysis analyze_probe_outages(
    const ProbeLog& log, std::span<const atlas::KRootPingRecord> kroot,
    std::optional<atlas::ProbeVersion> version,
    const std::vector<RebootInference>* reboots,
    const OutageDetectorConfig& config) {
    ProbeOutageAnalysis out;
    out.present = true;

    // Network outages: every probe version.
    out.network = detect_network_outages(kroot, config);

    // Power outages: v3 only — v1/v2 reboot on new TCP connections and
    // would fake power cuts (paper §5.1); unknown versions are excluded
    // for the same reason.
    if (version && *version == atlas::ProbeVersion::V3 && reboots) {
        out.power = detect_power_outages(*reboots, kroot, config);
        // A "power outage" whose window is explained by a detected
        // network outage is the network event seen twice; keep the
        // network attribution (paper §3.6 priority).
        std::erase_if(out.power, [&](const DetectedOutage& p) {
            for (const auto& n : out.network)
                if (n.begin < p.end && p.begin < n.end) return true;
            return false;
        });
    }

    out.network_outcomes = outage_outcomes(log, out.network);
    out.power_outcomes = outage_outcomes(log, out.power);
    out.tally =
        tally_probe(log.probe, out.network_outcomes, out.power_outcomes);
    return out;
}

}  // namespace

AnalysisResults AnalysisPipeline::run(
    const atlas::DatasetBundle& bundle, const bgp::PrefixTable& table,
    const bgp::AsRegistry& registry,
    std::optional<net::TimeInterval> window) const {
    // The batch entry point is a thin adapter over the streaming pipeline;
    // run_reference() below keeps the historical one-stage-at-a-time
    // implementation as the differential oracle. The emptiness check runs
    // up front so the error surfaces before any feeding, exactly like the
    // reference.
    if (!window && bundle.connection_log.empty())
        throw Error("empty connection log");
    StreamingPipeline::Options options;
    options.config = config_;
    options.keep_analyzable_logs = true;
    StreamingPipeline streaming(table, registry, options);
    streaming.open(window);
    streaming.feed_bundle(bundle);
    return streaming.finish();
}

AnalysisResults AnalysisPipeline::run_reference(
    const atlas::DatasetBundle& bundle, const bgp::PrefixTable& table,
    const bgp::AsRegistry& registry,
    std::optional<net::TimeInterval> window) const {
    detail::PipelineMetrics& metrics = detail::pipeline_metrics();
    metrics.runs.inc();
    obs::ObsSpan run_span("pipeline.run", "pipeline", &metrics.run_latency);
    AnalysisResults results;

    // -- observation window ---------------------------------------------------
    // Emptiness is checked before any scan so the sentinel bounds below can
    // never leak into results. An explicit window with an empty log is
    // valid: the pipeline runs with that window and every per-probe
    // analysis comes back empty (firmware detection still sees uptime data).
    if (!window && bundle.connection_log.empty())
        throw Error("empty connection log");
    if (window) {
        results.window = *window;
    } else {
        net::TimePoint lo{std::int64_t{1} << 60}, hi{-(std::int64_t{1} << 60)};
        for (const auto& e : bundle.connection_log) {
            lo = std::min(lo, e.start);
            hi = std::max(hi, e.end);
        }
        results.window = {lo, hi + net::Duration::seconds(1)};
    }

    // One pool for every per-probe stage; size 1 is exactly the
    // historical sequential path (no workers, plain loop).
    par::ThreadPool pool(par::resolve_threads(config_.threads));

    // -- §3: filtering and change extraction ----------------------------------
    const auto logs = group_by_probe(bundle.connection_log);
    {
        obs::ObsSpan span("pipeline.filter_probes", "pipeline",
                          &metrics.filter_latency);
        results.filter = filter_probes(logs, bundle.probes, config_.filter);
        results.ipv6_privacy = analyze_ipv6_privacy(logs, config_.ipv6);
        results.mapping = map_probes_to_as(results.filter.analyzable, table);
    }
    metrics.probes_in.inc(std::uint64_t(results.filter.total()));
    metrics.probes_analyzable.inc(
        std::uint64_t(results.filter.analyzable.size()));
    {
        std::unordered_map<atlas::ProbeId, atlas::ProbeVersion> version;
        for (const auto& meta : bundle.probes) version[meta.probe] = meta.version;
        for (const auto& log : results.filter.analyzable)
            if (auto it = version.find(log.probe); it != version.end())
                results.probe_versions.emplace(log.probe, it->second);
    }
    detail::record_funnel(results.filter);
    DYNADDR_LOG(Info, pipeline, "filtered ", results.filter.total(),
                " probes, ", results.filter.analyzable.size(), " analyzable");

    // Parallel stage: change extraction, one shard per analyzable probe.
    const auto& analyzable = results.filter.analyzable;
    results.changes.resize(analyzable.size());
    {
        obs::ObsSpan span("pipeline.extract_changes", "pipeline",
                          &metrics.changes_latency);
        pool.parallel_for_shards(analyzable.size(), [&](std::size_t i) {
            obs::ObsSpan shard("pipeline.extract_changes.shard", "shard");
            results.changes[i] = extract_changes(analyzable[i]);
        });
    }
    {
        std::size_t n = 0;
        for (const auto& c : results.changes) n += c.changes.size();
        metrics.changes_extracted.inc(n);
        DYNADDR_LOG(Info, pipeline, "extracted ", n, " address changes from ",
                    analyzable.size(), " probes");
    }

    // -- §4: periodicity; geography — cross-population, sequential barrier -----
    {
        obs::ObsSpan span("pipeline.periodicity", "pipeline",
                          &metrics.periodicity_latency);
        results.periodicity = analyze_periodicity(
            results.changes, results.mapping, registry, config_.periodicity);
        results.geography = analyze_geography(results.changes, bundle.probes);
    }

    // -- §6: prefixes -----------------------------------------------------------
    {
        obs::ObsSpan span("pipeline.prefix_changes", "pipeline",
                          &metrics.prefix_latency);
        results.prefix_changes = analyze_prefix_changes(
            results.changes, results.mapping, table, registry);
    }

    // -- §8 future work: administrative renumbering ------------------------------
    results.admin_events = detect_admin_renumbering(
        results.changes, results.mapping, table, results.window.end,
        config_.admin);

    // -- §5: outages (needs k-root + uptime data) -------------------------------
    if (bundle.kroot_pings.empty() && bundle.uptime_records.empty())
        return results;

    const auto kroot = split_kroot_by_probe(bundle.kroot_pings);
    const auto uptime = split_uptime_by_probe(bundle.uptime_records);

    // Parallel stage: reboot detection, one shard per probe with uptime
    // data. Shard-order concatenation reproduces the sequential map walk.
    std::vector<std::span<const atlas::UptimeRecord>> uptime_spans;
    uptime_spans.reserve(uptime.size());
    for (const auto& [probe, records] : uptime) uptime_spans.push_back(records);
    std::vector<std::vector<RebootInference>> reboot_slots(uptime_spans.size());
    {
        obs::ObsSpan span("pipeline.detect_reboots", "pipeline",
                          &metrics.reboot_latency);
        pool.parallel_for_shards(uptime_spans.size(), [&](std::size_t i) {
            obs::ObsSpan shard("pipeline.detect_reboots.shard", "shard");
            reboot_slots[i] = detect_reboots(uptime_spans[i]);
        });
    }
    std::vector<RebootInference> all_reboots;
    for (const auto& slot : reboot_slots)
        all_reboots.insert(all_reboots.end(), slot.begin(), slot.end());
    metrics.reboots_detected.inc(all_reboots.size());
    DYNADDR_LOG(Debug, pipeline, "detected ", all_reboots.size(),
                " reboots across ", uptime_spans.size(), " probes");

    // Reboots across the whole population feed the firmware-spike filter —
    // a cross-population sequential barrier.
    results.firmware =
        detect_firmware_spikes(all_reboots, results.window, config_.outage);
    const auto filtered_reboots = filter_firmware_reboots(
        all_reboots, results.firmware.release_days, config_.outage);
    std::map<atlas::ProbeId, std::vector<RebootInference>> reboots_by_probe;
    for (const auto& reboot : filtered_reboots)
        reboots_by_probe[reboot.probe].push_back(reboot);

    // Parallel stage: the §5 per-probe outage loop, one shard per
    // analyzable probe.
    std::vector<ProbeOutageAnalysis> outage_slots(analyzable.size());
    {
        obs::ObsSpan span("pipeline.outages", "pipeline",
                          &metrics.outage_latency);
        pool.parallel_for_shards(analyzable.size(), [&](std::size_t i) {
            const ProbeLog& log = analyzable[i];
            const auto kroot_it = kroot.find(log.probe);
            if (kroot_it == kroot.end()) return;  // slot stays absent
            obs::ObsSpan shard("pipeline.outages.shard", "shard");
            std::optional<atlas::ProbeVersion> probe_version;
            if (auto it = results.probe_versions.find(log.probe);
                it != results.probe_versions.end())
                probe_version = it->second;
            const std::vector<RebootInference>* reboots = nullptr;
            if (auto it = reboots_by_probe.find(log.probe);
                it != reboots_by_probe.end())
                reboots = &it->second;
            outage_slots[i] = analyze_probe_outages(log, kroot_it->second,
                                                    probe_version, reboots,
                                                    config_.outage);
        });
    }

    // Merge in shard order: analyzable is sorted by probe id, so map
    // insertion order and tally order match the sequential run exactly.
    std::vector<ProbeCondProb> tallies;
    for (std::size_t i = 0; i < outage_slots.size(); ++i) {
        auto& slot = outage_slots[i];
        if (!slot.present) continue;
        const atlas::ProbeId probe = analyzable[i].probe;
        tallies.push_back(slot.tally);
        results.network_outages.emplace(probe, std::move(slot.network));
        results.power_outages.emplace(probe, std::move(slot.power));
        results.network_outcomes.emplace(probe,
                                         std::move(slot.network_outcomes));
        results.power_outcomes.emplace(probe, std::move(slot.power_outcomes));
    }
    metrics.outage_probes.inc(tallies.size());
    results.cond_prob = analyze_cond_prob(tallies, results.mapping, registry,
                                          config_.cond_prob);
    return results;
}

}  // namespace dynaddr::core

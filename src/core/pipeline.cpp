#include "core/pipeline.hpp"

#include <algorithm>
#include <unordered_map>

#include "netcore/error.hpp"

namespace dynaddr::core {

const ProbeChanges* AnalysisResults::changes_of(atlas::ProbeId probe) const {
    auto it = std::lower_bound(changes.begin(), changes.end(), probe,
                               [](const ProbeChanges& c, atlas::ProbeId id) {
                                   return c.probe < id;
                               });
    if (it == changes.end() || it->probe != probe) return nullptr;
    return &*it;
}

DurationBinAnalysis duration_bins_for_as(
    const AnalysisResults& results, std::uint32_t asn,
    std::optional<DetectedOutage::Kind> kind) {
    DurationBinAnalysis bins;
    auto feed = [&](const std::map<atlas::ProbeId, std::vector<OutageOutcome>>&
                        outcomes) {
        for (const auto& [probe, list] : outcomes) {
            auto probe_as = results.mapping.as_of(probe);
            if (!probe_as || *probe_as != asn) continue;
            for (const auto& outcome : list) bins.add(outcome);
        }
    };
    if (!kind || *kind == DetectedOutage::Kind::Network)
        feed(results.network_outcomes);
    if (!kind || *kind == DetectedOutage::Kind::Power)
        feed(results.power_outcomes);
    return bins;
}

AnalysisResults AnalysisPipeline::run(
    const atlas::DatasetBundle& bundle, const bgp::PrefixTable& table,
    const bgp::AsRegistry& registry,
    std::optional<net::TimeInterval> window) const {
    AnalysisResults results;

    // -- observation window ---------------------------------------------------
    if (window) {
        results.window = *window;
    } else {
        net::TimePoint lo{std::int64_t{1} << 60}, hi{-(std::int64_t{1} << 60)};
        for (const auto& e : bundle.connection_log) {
            lo = std::min(lo, e.start);
            hi = std::max(hi, e.end);
        }
        if (bundle.connection_log.empty()) throw Error("empty connection log");
        results.window = {lo, hi + net::Duration::seconds(1)};
    }

    // -- §3: filtering and change extraction ----------------------------------
    const auto logs = group_by_probe(bundle.connection_log);
    results.filter = filter_probes(logs, bundle.probes, config_.filter);
    results.ipv6_privacy = analyze_ipv6_privacy(logs, config_.ipv6);
    results.mapping = map_probes_to_as(results.filter.analyzable, table);

    results.changes.reserve(results.filter.analyzable.size());
    for (const auto& log : results.filter.analyzable)
        results.changes.push_back(extract_changes(log));

    // -- §4: periodicity; geography --------------------------------------------
    results.periodicity = analyze_periodicity(results.changes, results.mapping,
                                              registry, config_.periodicity);
    results.geography = analyze_geography(results.changes, bundle.probes);

    // -- §6: prefixes -----------------------------------------------------------
    results.prefix_changes = analyze_prefix_changes(
        results.changes, results.mapping, table, registry);

    // -- §8 future work: administrative renumbering ------------------------------
    results.admin_events = detect_admin_renumbering(
        results.changes, results.mapping, table, results.window.end,
        config_.admin);

    // -- §5: outages (needs k-root + uptime data) -------------------------------
    if (bundle.kroot_pings.empty() && bundle.uptime_records.empty())
        return results;

    std::unordered_map<atlas::ProbeId, atlas::ProbeVersion> version;
    for (const auto& meta : bundle.probes) version[meta.probe] = meta.version;

    const auto kroot = split_kroot_by_probe(bundle.kroot_pings);
    const auto uptime = split_uptime_by_probe(bundle.uptime_records);

    // Reboots across the whole population feed the firmware-spike filter.
    std::vector<RebootInference> all_reboots;
    for (const auto& [probe, records] : uptime) {
        auto reboots = detect_reboots(records);
        all_reboots.insert(all_reboots.end(), reboots.begin(), reboots.end());
    }
    results.firmware =
        detect_firmware_spikes(all_reboots, results.window, config_.outage);
    const auto filtered_reboots = filter_firmware_reboots(
        all_reboots, results.firmware.release_days, config_.outage);
    std::map<atlas::ProbeId, std::vector<RebootInference>> reboots_by_probe;
    for (const auto& reboot : filtered_reboots)
        reboots_by_probe[reboot.probe].push_back(reboot);

    std::vector<ProbeCondProb> tallies;
    for (const auto& log : results.filter.analyzable) {
        const atlas::ProbeId probe = log.probe;
        const auto kroot_it = kroot.find(probe);
        if (kroot_it == kroot.end()) continue;

        // Network outages: every probe version.
        auto network = detect_network_outages(kroot_it->second, config_.outage);

        // Power outages: v3 only — v1/v2 reboot on new TCP connections and
        // would fake power cuts (paper §5.1).
        std::vector<DetectedOutage> power;
        const auto version_it = version.find(probe);
        const bool v3 = version_it == version.end() ||
                        version_it->second == atlas::ProbeVersion::V3;
        if (v3) {
            if (auto rb = reboots_by_probe.find(probe);
                rb != reboots_by_probe.end()) {
                power = detect_power_outages(rb->second, kroot_it->second,
                                             config_.outage);
                // A "power outage" whose window is explained by a detected
                // network outage is the network event seen twice; keep the
                // network attribution (paper §3.6 priority).
                std::erase_if(power, [&](const DetectedOutage& p) {
                    for (const auto& n : network)
                        if (n.begin < p.end && p.begin < n.end) return true;
                    return false;
                });
            }
        }

        auto network_outcomes = outage_outcomes(log, network);
        auto power_outcomes = outage_outcomes(log, power);
        tallies.push_back(tally_probe(probe, network_outcomes, power_outcomes));

        results.network_outages.emplace(probe, std::move(network));
        results.power_outages.emplace(probe, std::move(power));
        results.network_outcomes.emplace(probe, std::move(network_outcomes));
        results.power_outcomes.emplace(probe, std::move(power_outcomes));
    }
    results.cond_prob = analyze_cond_prob(tallies, results.mapping, registry,
                                          config_.cond_prob);
    return results;
}

}  // namespace dynaddr::core

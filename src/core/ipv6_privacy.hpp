#pragma once

#include <span>
#include <vector>

#include "core/conlog.hpp"
#include "netcore/histogram.hpp"

namespace dynaddr::core {

/// IPv6 temporary-address analysis (the paper's §8 future work, following
/// Plonka & Berger's ephemeral/stable classification and the RFC 4941
/// recommendation — cited in the paper — that privacy addresses rotate
/// daily).
///
/// Works over the probes the IPv4 pipeline *discards* (dual-stack and
/// IPv6-only): for each probe, its IPv6 addresses are grouped by /64; an
/// address is ephemeral when the span between its first and last sighting
/// stays under a threshold, and a probe "rotates" when it used several
/// interface identifiers inside one /64.
struct Ipv6PrivacyConfig {
    /// Maximum observed lifetime for an address to count as ephemeral
    /// (RFC 4941 default preferred lifetime is 1 day; allow slack for the
    /// overlap window during regeneration).
    net::Duration ephemeral_lifetime = net::Duration::hours(36);
    /// Minimum distinct interface ids inside one /64 before the probe
    /// counts as rotating.
    int min_iids_for_rotation = 3;
};

struct Ipv6ProbeView {
    atlas::ProbeId probe = 0;
    int addresses = 0;       ///< distinct IPv6 addresses seen
    int ephemeral = 0;       ///< of those, short-lived ones
    bool rotating = false;   ///< several IIDs inside one /64
    /// Median hours between first sightings of successive addresses in
    /// the busiest /64 (0 when fewer than two addresses) — the rotation
    /// period estimate.
    double rotation_hours = 0.0;
};

struct Ipv6PrivacyAnalysis {
    std::vector<Ipv6ProbeView> probes;  ///< probes with >= 1 IPv6 connection
    int total_addresses = 0;
    int ephemeral_addresses = 0;
    int rotating_probes = 0;
    /// Distribution of per-probe rotation period estimates, hours.
    stats::Cdf rotation_cdf;

    [[nodiscard]] double ephemeral_fraction() const {
        return total_addresses == 0
                   ? 0.0
                   : double(ephemeral_addresses) / total_addresses;
    }
};

/// Runs over *unfiltered* per-probe logs (the v4 pipeline's discards are
/// exactly the input here).
Ipv6PrivacyAnalysis analyze_ipv6_privacy(std::span<const ProbeLog> logs,
                                         const Ipv6PrivacyConfig& config = {});

}  // namespace dynaddr::core

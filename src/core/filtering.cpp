#include "core/filtering.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace dynaddr::core {

namespace {

bool has_multihomed_tag(const atlas::ProbeMetadata& meta,
                        const FilterConfig& config) {
    for (const auto& tag : meta.tags)
        for (const auto& wanted : config.multihomed_tags)
            if (tag == wanted) return true;
    return false;
}

/// Removes a leading connection from the RIPE testing address, mirroring
/// the paper's cleanup. Returns true when an entry was removed.
bool strip_testing_entry(ProbeLog& log) {
    if (log.entries.empty()) return false;
    const auto& first = log.entries.front();
    if (first.address.is_v4() && first.address.v4 == atlas::testing_address()) {
        log.entries.erase(log.entries.begin());
        return true;
    }
    return false;
}

/// Number of distinct IPv4 addresses across entries.
std::size_t distinct_v4(const ProbeLog& log) {
    std::unordered_set<std::uint32_t> seen;
    for (const auto& e : log.entries)
        if (e.address.is_v4()) seen.insert(e.address.v4.value());
    return seen.size();
}

}  // namespace

const char* category_name(ProbeCategory category) {
    switch (category) {
        case ProbeCategory::Analyzable: return "Analyzable";
        case ProbeCategory::NeverChanged: return "Never changed";
        case ProbeCategory::DualStack: return "Dual stack";
        case ProbeCategory::Ipv6Only: return "IPv6";
        case ProbeCategory::TaggedMultihomed:
            return "Multihomed / Core / Datacenter (tags)";
        case ProbeCategory::AlternatingMultihomed:
            return "Multihomed (alternating addresses)";
        case ProbeCategory::TestingAddressOnly:
            return "Only address change from 193.0.0.78";
    }
    return "?";
}

bool is_alternating_multihomed(const ProbeLog& log, int min_returns) {
    // Count, per address, how many times the probe *returns* to it: a
    // connection from A after at least one connection from a different
    // address. ISP dynamics essentially never hand the same address back
    // repeatedly with other addresses in between; a second upstream does.
    std::unordered_map<std::uint32_t, int> returns;
    std::unordered_set<std::uint32_t> seen;
    std::uint32_t previous = 0;
    bool have_previous = false;
    for (const auto& entry : log.entries) {
        if (!entry.address.is_v4()) continue;
        const std::uint32_t addr = entry.address.v4.value();
        if (have_previous && addr != previous && seen.contains(addr)) {
            if (++returns[addr] >= min_returns) return true;
        }
        seen.insert(addr);
        previous = addr;
        have_previous = true;
    }
    return false;
}

FilterReport filter_probes(std::span<const ProbeLog> logs,
                           std::span<const atlas::ProbeMetadata> metadata,
                           const FilterConfig& config) {
    std::unordered_map<atlas::ProbeId, const atlas::ProbeMetadata*> meta_by_id;
    for (const auto& meta : metadata) meta_by_id[meta.probe] = &meta;

    FilterReport report;
    auto classify = [&](const ProbeLog& log) -> ProbeCategory {
        bool any_v4 = false, any_v6 = false;
        for (const auto& e : log.entries) {
            any_v4 = any_v4 || e.address.is_v4();
            any_v6 = any_v6 || !e.address.is_v4();
        }
        if (any_v6 && !any_v4) return ProbeCategory::Ipv6Only;
        if (any_v6 && any_v4) return ProbeCategory::DualStack;
        if (auto it = meta_by_id.find(log.probe);
            it != meta_by_id.end() && has_multihomed_tag(*it->second, config))
            return ProbeCategory::TaggedMultihomed;
        if (is_alternating_multihomed(log, config.min_returns_for_multihomed))
            return ProbeCategory::AlternatingMultihomed;

        ProbeLog cleaned = log;
        const bool had_testing = strip_testing_entry(cleaned);
        const std::size_t addresses = distinct_v4(cleaned);
        if (addresses <= 1) {
            if (had_testing) return ProbeCategory::TestingAddressOnly;
            return ProbeCategory::NeverChanged;
        }
        report.analyzable.push_back(std::move(cleaned));
        return ProbeCategory::Analyzable;
    };

    for (const auto& log : logs) {
        const ProbeCategory category = classify(log);
        report.category[log.probe] = category;
        ++report.counts[category];
    }
    std::sort(report.analyzable.begin(), report.analyzable.end(),
              [](const ProbeLog& a, const ProbeLog& b) { return a.probe < b.probe; });
    return report;
}

}  // namespace dynaddr::core

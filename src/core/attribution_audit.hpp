#pragma once

// Attribution audit: scores the pipeline's inferred change causes against
// the simulator's cause-ledger ground truth (sim/cause_ledger.hpp).
//
// The join works per probe: each ledger record carries the acquisition
// instant of the new address, which must fall inside exactly one pipeline
// change gap (last_seen, first_seen). Multiple truth records inside one
// gap mean the probe slept through intermediate changes — the last record
// (the one that produced the address the probe woke up to) is scored
// against the inferred cause and the earlier ones are counted as
// coalesced. Records with no gap to join (filtered probe, censored
// tenure) are unobserved; gaps with no record (special probes have no
// CPE) are unmatched changes.
//
// Recall is gated over *detectable* records only: a root cause the
// measurement side cannot see — an outage kind whose detector had no
// k-root data in this bundle, or an outage shorter than the sampling
// cadence resolves — is reported as undetectable, not failed.

#include <array>
#include <string>
#include <vector>

#include "core/change_attribution.hpp"
#include "sim/cause_ledger.hpp"

namespace dynaddr::core {

inline constexpr std::size_t kChangeCauseCount = 5;

/// The pipeline cause a ledger root cause should be inferred as. Kinds
/// with no measurement-visible signature (server amnesia, exhaustion,
/// message faults, the jittered max-age cap, cross-AS moves) map to
/// Unknown: they are expected residual, reported but never gated.
[[nodiscard]] ChangeCause expected_cause(sim::CauseKind kind);

struct AuditConfig {
    ChangeAttributionConfig attribution;
    /// Slack when placing a ledger record inside a change gap. The
    /// acquisition instant lies strictly inside (last_seen, first_seen)
    /// by construction; the slack only absorbs log rounding.
    net::Duration match_slack = net::Duration::minutes(5);
    /// A power outage must outlast the k-root gap rule (min_power_gap
    /// plus CPE boot) for the reboot to register as one.
    net::Duration min_power_outage = net::Duration::minutes(10);
    /// A network outage must span k-root samples to show as an all-lost
    /// run; anything shorter than a couple of base cadences is invisible.
    net::Duration min_network_outage = net::Duration::hours(9);
};

/// One truth-kind row of the confusion matrix.
struct AuditKindRow {
    sim::CauseKind kind = sim::CauseKind::Unknown;
    int scored = 0;      ///< joined a gap and judged against its inference
    int coalesced = 0;   ///< joined a gap another record scored
    int unobserved = 0;  ///< no pipeline change gap to join
    int detectable = 0;  ///< scored records counted in the gated recall
    int correct = 0;     ///< detectable and inferred == expected
    /// Inferred-cause tallies over the scored records, indexed by
    /// int(ChangeCause).
    std::array<int, kChangeCauseCount> inferred{};

    [[nodiscard]] int total() const { return scored + coalesced + unobserved; }
    [[nodiscard]] double recall() const {
        return detectable == 0 ? 0.0 : double(correct) / detectable;
    }
};

/// Per-AS accuracy row (ASes the scored changes mapped to).
struct AuditAsRow {
    std::uint32_t asn = 0;
    std::string as_name;
    int scored = 0;
    int detectable = 0;
    int correct = 0;

    [[nodiscard]] double accuracy() const {
        return detectable == 0 ? 0.0 : double(correct) / detectable;
    }
};

struct AttributionAudit {
    std::uint64_t ledger_records = 0;  ///< records fed into the audit
    int scored = 0;
    int coalesced = 0;
    int unobserved = 0;
    int unmatched_changes = 0;  ///< pipeline changes with no truth record
    /// Did this bundle carry the data the outage detectors need? False
    /// means every record of that class is undetectable by construction.
    bool network_detector_active = false;
    bool power_detector_active = false;
    std::vector<AuditKindRow> kinds;  ///< kinds present, enum order
    std::vector<AuditAsRow> by_as;    ///< descending by scored
    /// Precision inputs over all scored records, indexed by
    /// int(ChangeCause): how many changes were inferred as each cause,
    /// and how many of those had matching ground truth.
    std::array<int, kChangeCauseCount> inferred_totals{};
    std::array<int, kChangeCauseCount> inferred_correct{};

    /// Recall of one expected class over its detectable records.
    [[nodiscard]] double recall(ChangeCause expected) const;
    /// Precision of one inferred cause over all scored records.
    [[nodiscard]] double precision(ChangeCause inferred) const;
    /// Fraction of scored changes the pipeline left Unknown.
    [[nodiscard]] double unknown_residual() const;
};

/// Joins ledger ground truth against the pipeline's inferred causes.
[[nodiscard]] AttributionAudit audit_attribution(
    const AnalysisResults& results, const bgp::PrefixTable& table,
    const bgp::AsRegistry& registry,
    const std::vector<sim::CauseRecord>& ledger, const AuditConfig& config = {});

/// Bumps the attribution_audit.* counters (machine-readable confusion
/// matrix, pattern of table2_funnel). Call once per audit.
void record_attribution_audit(const AttributionAudit& audit);

/// Text rendering in the house table style.
std::string render_attribution_audit(const AttributionAudit& audit);

}  // namespace dynaddr::core

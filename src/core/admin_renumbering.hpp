#pragma once

#include <span>
#include <vector>

#include "bgp/prefix_table.hpp"
#include "core/address_change.hpp"
#include "core/as_mapping.hpp"

namespace dynaddr::core {

/// A detected administrative renumbering: many subscribers of one AS left
/// a routed prefix within a short window and the prefix never carried any
/// of them again. The paper observed a single such instance and names the
/// systematic analysis as future work (§8); this module implements it.
struct AdminRenumberingEvent {
    std::uint32_t asn = 0;
    net::IPv4Prefix retired_prefix;  ///< the block everyone left
    net::TimePoint first_departure;  ///< earliest final exit in the burst
    net::TimePoint last_departure;   ///< latest final exit in the burst
    int probes_moved = 0;            ///< distinct probes in the burst
    /// Most common routed destination prefix of the departures (length 0
    /// when destinations were unrouted).
    net::IPv4Prefix destination_prefix;
};

/// Detection thresholds.
struct AdminRenumberingConfig {
    /// A burst needs at least this many distinct probes making their
    /// final departure from the prefix...
    int min_probes = 3;
    /// ...within this window...
    net::Duration departure_window = net::Duration::days(3);
    /// ...and the prefix must stay unused for at least this long after
    /// the burst (distinguishes a retirement from routine pool rotation,
    /// where the prefix is re-drawn within hours).
    net::Duration quiet_after = net::Duration::days(14);
};

/// Scans the address changes of single-AS probes for en-masse departures.
/// `observation_end` bounds the "stays unused" test (a prefix retired
/// just before the window ends cannot be confirmed quiet and is not
/// reported). Routed prefixes are resolved via the monthly table at each
/// side's own time, as everywhere else in the pipeline.
std::vector<AdminRenumberingEvent> detect_admin_renumbering(
    std::span<const ProbeChanges> probes, const AsMapping& mapping,
    const bgp::PrefixTable& table, net::TimePoint observation_end,
    const AdminRenumberingConfig& config = {});

}  // namespace dynaddr::core

#include "core/outages.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "netcore/error.hpp"

namespace dynaddr::core {

std::vector<DetectedOutage> detect_network_outages(
    std::span<const atlas::KRootPingRecord> records,
    const OutageDetectorConfig& config) {
    std::vector<DetectedOutage> outages;
    std::size_t i = 0;
    while (i < records.size()) {
        if (records[i].sent == 0 || records[i].success > 0) {
            ++i;
            continue;
        }
        // Maximal run of all-lost records.
        std::size_t j = i;
        std::int64_t max_lts = 0;
        while (j < records.size() && records[j].sent > 0 &&
               records[j].success == 0) {
            max_lts = std::max(max_lts, records[j].lts_seconds);
            ++j;
        }
        // LTS must confirm loss of controller contact, else the probe was
        // still reporting (k-root unreachable but network fine).
        if (max_lts >= config.min_lts_seconds) {
            DetectedOutage outage;
            outage.kind = DetectedOutage::Kind::Network;
            outage.probe = records[i].probe;
            outage.begin = records[i].timestamp;
            outage.end = records[j - 1].timestamp;
            outages.push_back(outage);
        }
        i = j;
    }
    return outages;
}

std::vector<RebootInference> detect_reboots(
    std::span<const atlas::UptimeRecord> records) {
    std::vector<RebootInference> reboots;
    for (std::size_t i = 1; i < records.size(); ++i) {
        if (records[i].uptime_seconds < records[i - 1].uptime_seconds) {
            reboots.push_back(
                {records[i].probe,
                 records[i].timestamp -
                     net::Duration{std::int64_t(records[i].uptime_seconds)}});
        }
    }
    return reboots;
}

FirmwareAnalysis detect_firmware_spikes(std::span<const RebootInference> reboots,
                                        net::TimeInterval window,
                                        const OutageDetectorConfig& config) {
    FirmwareAnalysis analysis;
    const int days = int(window.length().count() / 86400) + 1;
    // Unique probes per day.
    std::map<int, std::unordered_set<atlas::ProbeId>> probes_by_day;
    for (const auto& reboot : reboots) {
        if (reboot.at < window.begin || reboot.at >= window.end) continue;
        const int day = int((reboot.at - window.begin).count() / 86400);
        probes_by_day[day].insert(reboot.probe);
    }
    std::vector<int> counts(std::size_t(days), 0);
    for (const auto& [day, probes] : probes_by_day) {
        counts[std::size_t(day)] = int(probes.size());
        analysis.probes_rebooted_per_day[day] = int(probes.size());
    }
    // Median over all days (zeros included: quiet days count). Even-sized
    // windows take the mean of the two middle elements — the upper element
    // alone would bias the spike threshold upward.
    std::vector<int> sorted = counts;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.empty()) {
        analysis.median_per_day = 0.0;
    } else {
        const std::size_t mid = sorted.size() / 2;
        analysis.median_per_day =
            sorted.size() % 2 != 0
                ? double(sorted[mid])
                : (double(sorted[mid - 1]) + double(sorted[mid])) / 2.0;
    }

    const double threshold =
        std::max(1.0, config.spike_factor * analysis.median_per_day);
    int run_start = -1;
    for (int day = 0; day <= days; ++day) {
        const bool spiking =
            day < days && double(counts[std::size_t(day)]) > threshold;
        if (spiking && run_start < 0) run_start = day;
        if (!spiking && run_start >= 0) {
            if (day - run_start >= config.spike_min_days)
                analysis.release_days.push_back(
                    window.begin + net::Duration::days(run_start));
            run_start = -1;
        }
    }
    return analysis;
}

std::vector<RebootInference> filter_firmware_reboots(
    std::span<const RebootInference> reboots,
    std::span<const net::TimePoint> release_days,
    const OutageDetectorConfig& config) {
    std::vector<RebootInference> sorted(reboots.begin(), reboots.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const RebootInference& a, const RebootInference& b) {
                  if (a.probe != b.probe) return a.probe < b.probe;
                  return a.at < b.at;
              });
    std::vector<net::TimePoint> releases(release_days.begin(), release_days.end());
    std::sort(releases.begin(), releases.end());

    std::vector<RebootInference> kept;
    kept.reserve(sorted.size());
    // Per probe, drop the first reboot inside each release's window.
    std::unordered_map<atlas::ProbeId, std::unordered_set<std::size_t>> consumed;
    for (const auto& reboot : sorted) {
        bool drop = false;
        for (std::size_t r = 0; r < releases.size(); ++r) {
            if (reboot.at < releases[r] ||
                reboot.at >= releases[r] + config.firmware_attribution_window)
                continue;
            auto& used = consumed[reboot.probe];
            if (!used.contains(r)) {
                used.insert(r);
                drop = true;
            }
            break;
        }
        if (!drop) kept.push_back(reboot);
    }
    return kept;
}

std::vector<DetectedOutage> detect_power_outages(
    std::span<const RebootInference> reboots,
    std::span<const atlas::KRootPingRecord> records,
    const OutageDetectorConfig& config) {
    std::vector<DetectedOutage> outages;
    for (const auto& reboot : reboots) {
        // Records flanking the reboot instant.
        auto after = std::lower_bound(
            records.begin(), records.end(), reboot.at,
            [](const atlas::KRootPingRecord& r, net::TimePoint t) {
                return r.timestamp < t;
            });
        if (after == records.begin() || after == records.end()) continue;
        const auto& prev = *std::prev(after);
        const auto& next = *after;
        if (next.timestamp - prev.timestamp < config.min_power_gap)
            continue;  // no missing pings: probe-only blip, not a power cut
        DetectedOutage outage;
        outage.kind = DetectedOutage::Kind::Power;
        outage.probe = reboot.probe;
        outage.begin = prev.timestamp;
        outage.end = next.timestamp;
        outages.push_back(outage);
    }
    return outages;
}

namespace {

/// True when `outage` overlaps `gap` widened by slack.
bool overlaps(const DetectedOutage& outage, const net::TimeInterval& gap,
              net::Duration slack) {
    return outage.begin < gap.end + slack && gap.begin - slack < outage.end;
}

}  // namespace

std::vector<GapAttribution> attribute_gaps(
    const ProbeLog& log, std::span<const DetectedOutage> network,
    std::span<const DetectedOutage> power, net::Duration slack) {
    std::vector<GapAttribution> gaps;
    for (std::size_t i = 1; i < log.entries.size(); ++i) {
        GapAttribution gap;
        gap.gap = {log.entries[i - 1].end, log.entries[i].start};
        gap.address_changed =
            !(log.entries[i - 1].address == log.entries[i].address);
        gap.cause = GapCause::NoOutage;
        for (const auto& outage : network) {
            if (overlaps(outage, gap.gap, slack)) {
                gap.cause = GapCause::NetworkOutage;
                break;
            }
        }
        if (gap.cause == GapCause::NoOutage) {
            for (const auto& outage : power) {
                if (overlaps(outage, gap.gap, slack)) {
                    gap.cause = GapCause::PowerOutage;
                    break;
                }
            }
        }
        gaps.push_back(gap);
    }
    return gaps;
}

std::vector<OutageOutcome> outage_outcomes(const ProbeLog& log,
                                           std::span<const DetectedOutage> outages,
                                           net::Duration slack) {
    std::vector<OutageOutcome> outcomes;
    outcomes.reserve(outages.size());
    for (const auto& outage : outages) {
        OutageOutcome outcome{outage, false};
        for (std::size_t i = 1; i < log.entries.size(); ++i) {
            const net::TimeInterval gap{log.entries[i - 1].end,
                                        log.entries[i].start};
            if (!overlaps(outage, gap, slack)) continue;
            if (!(log.entries[i - 1].address == log.entries[i].address)) {
                outcome.address_change = true;
                break;
            }
        }
        outcomes.push_back(outcome);
    }
    return outcomes;
}

namespace {

template <typename Record>
std::map<atlas::ProbeId, std::span<const Record>> split_by_probe(
    std::span<const Record> records) {
    std::map<atlas::ProbeId, std::span<const Record>> out;
    std::size_t i = 0;
    while (i < records.size()) {
        std::size_t j = i;
        while (j < records.size() && records[j].probe == records[i].probe) ++j;
        out.emplace(records[i].probe, records.subspan(i, j - i));
        i = j;
    }
    return out;
}

}  // namespace

std::map<atlas::ProbeId, std::span<const atlas::KRootPingRecord>>
split_kroot_by_probe(std::span<const atlas::KRootPingRecord> records) {
    return split_by_probe(records);
}

std::map<atlas::ProbeId, std::span<const atlas::UptimeRecord>>
split_uptime_by_probe(std::span<const atlas::UptimeRecord> records) {
    return split_by_probe(records);
}

}  // namespace dynaddr::core

#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace dynaddr::core {

/// Text renderings of the paper's tables from pipeline results. Each
/// returns a ready-to-print block (monospace), formatted like the paper.
std::string render_table2(const FilterReport& report);
std::string render_table5(const PeriodicityAnalysis& analysis);
std::string render_table6(const CondProbAnalysis& analysis);
std::string render_table7(const PrefixChangeAnalysis& analysis);

/// Figure 6 rendering: reboot counts per day with inferred release days.
std::string render_firmware_series(const FirmwareAnalysis& analysis,
                                   net::TimeInterval window);

/// One-paragraph run summary (probe counts, changes, spans, outages).
std::string render_summary(const AnalysisResults& results);

/// Formats a double with the given decimals (shared by benches).
std::string fmt(double value, int decimals = 1);

}  // namespace dynaddr::core

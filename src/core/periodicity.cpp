#include "core/periodicity.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace dynaddr::core {

namespace {

/// Percentage helper, 0 when the denominator is 0.
double pct(int numerator, int denominator) {
    return denominator == 0 ? 0.0 : 100.0 * double(numerator) / double(denominator);
}

/// Builds one Table 5 row from a set of probes periodic at `d`.
Table5Row build_row(double d, int probes_with_change,
                    std::span<const ProbePeriodicity* const> periodic,
                    double tolerance) {
    Table5Row row;
    row.d_hours = d;
    row.probes_with_change = probes_with_change;
    row.periodic_probes = int(periodic.size());
    int over_half = 0, over_34 = 0, max_le = 0, harmonic = 0;
    const double cap = d * (1.0 + tolerance);
    for (const ProbePeriodicity* probe : periodic) {
        const double f = probe->ttf.fraction_at(d);
        if (f > 0.5) ++over_half;
        if (f > 0.75) ++over_34;
        if (probe->max_span_hours <= cap) ++max_le;
        if (spans_harmonic_of(probe->span_hours, d, tolerance)) ++harmonic;
    }
    row.pct_over_half = pct(over_half, row.periodic_probes);
    row.pct_over_three_quarters = pct(over_34, row.periodic_probes);
    row.pct_max_le_d = pct(max_le, row.periodic_probes);
    row.pct_harmonic = pct(harmonic, row.periodic_probes);
    return row;
}

}  // namespace

ProbePeriodicity classify_probe(const ProbeChanges& changes,
                                const PeriodicityConfig& config) {
    ProbePeriodicity result;
    result.probe = changes.probe;
    result.change_count = int(changes.changes.size());
    for (const auto& span : changes.spans) {
        const double hours = quantize_hours(span.duration());
        result.span_hours.push_back(hours);
        result.max_span_hours = std::max(result.max_span_hours, hours);
    }
    result.ttf.add_all(changes.spans);
    // Largest-mass duration that repeats often enough to be a schedule.
    for (const auto& mode : result.ttf.modes(config.probe_threshold)) {
        const auto repeats = std::count(result.span_hours.begin(),
                                        result.span_hours.end(), mode.x);
        if (repeats < config.min_spans_at_period) continue;
        result.period_hours = mode.x;
        result.fraction = mode.y;
        break;
    }
    return result;
}

bool spans_harmonic_of(std::span<const double> span_hours, double d_hours,
                       double tolerance) {
    if (d_hours <= 0.0) return false;
    for (double span : span_hours) {
        if (span <= d_hours * (1.0 + tolerance)) continue;
        const double k = std::round(span / d_hours);
        if (k < 1.0 || std::abs(span - k * d_hours) > tolerance * d_hours)
            return false;
    }
    return true;
}

PeriodicityAnalysis analyze_periodicity(std::span<const ProbeChanges> probes,
                                        const AsMapping& mapping,
                                        const bgp::AsRegistry& registry,
                                        const PeriodicityConfig& config) {
    PeriodicityAnalysis analysis;
    analysis.probes.reserve(probes.size());
    for (const auto& changes : probes)
        analysis.probes.push_back(classify_probe(changes, config));

    // ---- "All" rows at the two headline periods -------------------------
    int total_changed = 0;
    for (const auto& probe : analysis.probes)
        if (probe.change_count >= 1) ++total_changed;
    for (double d : {24.0, 168.0}) {
        std::vector<const ProbePeriodicity*> periodic;
        for (const auto& probe : analysis.probes)
            if (probe.ttf.fraction_at(d) > config.probe_threshold)
                periodic.push_back(&probe);
        Table5Row row = build_row(d, total_changed, periodic, config.tolerance);
        row.as_name = "All";
        analysis.all_rows.push_back(row);
    }

    // ---- per-(AS, d) rows -------------------------------------------------
    // Group single-AS probes by AS; count changed probes per AS; bucket
    // periodic probes by their period.
    std::map<std::uint32_t, std::vector<const ProbePeriodicity*>> by_as;
    for (const auto& probe : analysis.probes) {
        auto asn = mapping.as_of(probe.probe);
        if (!asn) continue;
        by_as[*asn].push_back(&probe);
    }
    for (const auto& [asn, members] : by_as) {
        int changed = 0;
        std::map<double, std::vector<const ProbePeriodicity*>> by_period;
        for (const ProbePeriodicity* probe : members) {
            if (probe->change_count >= 1) ++changed;
            if (probe->period_hours)
                by_period[*probe->period_hours].push_back(probe);
        }
        if (changed < config.min_changed_probes) continue;
        for (const auto& [d, periodic] : by_period) {
            if (int(periodic.size()) < config.min_periodic_probes) continue;
            Table5Row row = build_row(d, changed, periodic, config.tolerance);
            row.asn = asn;
            if (auto info = registry.find(asn)) {
                row.as_name = info->name;
                row.country = info->country_code;
            } else {
                row.as_name = "AS" + std::to_string(asn);
            }
            analysis.as_rows.push_back(row);
        }
    }
    std::sort(analysis.as_rows.begin(), analysis.as_rows.end(),
              [](const Table5Row& a, const Table5Row& b) {
                  if (a.periodic_probes != b.periodic_probes)
                      return a.periodic_probes > b.periodic_probes;
                  return a.asn < b.asn;
              });
    return analysis;
}

std::array<int, 24> sync_histogram(std::span<const ProbeChanges> probes,
                                   double d_hours) {
    std::array<int, 24> histogram{};
    for (const auto& changes : probes)
        for (const auto& span : changes.spans)
            if (quantize_hours(span.duration()) == d_hours)
                ++histogram[std::size_t(span.end.hour_of_day())];
    return histogram;
}

}  // namespace dynaddr::core

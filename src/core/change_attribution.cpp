#include "core/change_attribution.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "netcore/ascii_chart.hpp"
#include "netcore/obs/metrics.hpp"
#include "core/report.hpp"

namespace dynaddr::core {

namespace {

bool overlaps_outage(const std::vector<DetectedOutage>& outages,
                     const net::TimeInterval& gap, net::Duration slack) {
    for (const auto& outage : outages)
        if (outage.begin < gap.end + slack && gap.begin - slack < outage.end)
            return true;
    return false;
}

/// Does the tenure length (hours) match d or a multiple of d within tol?
bool matches_period(double hours, double d, double tolerance) {
    if (d <= 0.0) return false;
    const double k = std::max(1.0, std::round(hours / d));
    return std::abs(hours - k * d) <= tolerance * d;
}

void count(ChangeAttributionRow& row, ChangeCause cause) {
    ++row.total;
    switch (cause) {
        case ChangeCause::Administrative: ++row.administrative; break;
        case ChangeCause::NetworkOutage: ++row.network; break;
        case ChangeCause::PowerOutage: ++row.power; break;
        case ChangeCause::Periodic: ++row.periodic; break;
        case ChangeCause::Unknown: ++row.unknown; break;
    }
}

}  // namespace

const char* change_cause_name(ChangeCause cause) {
    switch (cause) {
        case ChangeCause::Administrative: return "administrative";
        case ChangeCause::NetworkOutage: return "network outage";
        case ChangeCause::PowerOutage: return "power outage";
        case ChangeCause::Periodic: return "periodic";
        case ChangeCause::Unknown: return "unknown";
    }
    return "?";
}

std::vector<AttributedChange> attribute_changes_detailed(
    const AnalysisResults& results, const bgp::PrefixTable& table,
    const ChangeAttributionConfig& config) {
    // Per-probe period lookup.
    std::unordered_map<atlas::ProbeId, double> period_of;
    for (const auto& probe : results.periodicity.probes)
        if (probe.period_hours) period_of[probe.probe] = *probe.period_hours;

    // Admin events grouped by AS.
    std::map<std::uint32_t, std::vector<const AdminRenumberingEvent*>> admin_by_as;
    for (const auto& event : results.admin_events)
        admin_by_as[event.asn].push_back(&event);

    static const std::vector<DetectedOutage> kNoOutages;
    auto outages_of = [&](const auto& outage_map,
                          atlas::ProbeId probe) -> const std::vector<DetectedOutage>& {
        auto it = outage_map.find(probe);
        return it == outage_map.end() ? kNoOutages : it->second;
    };

    std::vector<AttributedChange> attributed;

    for (const auto& probe : results.changes) {
        const auto asn = results.mapping.as_of(probe.probe);
        const auto& network = outages_of(results.network_outages, probe.probe);
        const auto& power = outages_of(results.power_outages, probe.probe);
        const auto period_it = period_of.find(probe.probe);

        for (std::size_t k = 0; k < probe.changes.size(); ++k) {
            const auto& change = probe.changes[k];
            ChangeCause cause = ChangeCause::Unknown;

            // 1. Administrative: leaving a retired prefix inside the burst.
            if (asn) {
                if (auto admin_it = admin_by_as.find(*asn);
                    admin_it != admin_by_as.end()) {
                    const auto from_routed =
                        table.routed_prefix(change.from, change.last_seen);
                    for (const auto* event : admin_it->second) {
                        if (from_routed &&
                            from_routed->prefix == event->retired_prefix &&
                            change.last_seen >=
                                event->first_departure - config.admin_slack &&
                            change.last_seen <=
                                event->last_departure + config.admin_slack) {
                            cause = ChangeCause::Administrative;
                            break;
                        }
                    }
                }
            }

            // 2./3. Outage-associated (network has priority, as in §3.6).
            const net::TimeInterval gap{change.last_seen, change.first_seen};
            if (cause == ChangeCause::Unknown &&
                overlaps_outage(network, gap, config.outage_slack))
                cause = ChangeCause::NetworkOutage;
            if (cause == ChangeCause::Unknown &&
                overlaps_outage(power, gap, config.outage_slack))
                cause = ChangeCause::PowerOutage;

            // 4. Periodic: the tenure ending here matches the probe's
            // period (or a harmonic — a skipped cycle still ends on the
            // schedule).
            if (cause == ChangeCause::Unknown && k >= 1 &&
                period_it != period_of.end()) {
                const double hours = quantize_hours(
                    change.last_seen - probe.changes[k - 1].first_seen);
                if (matches_period(hours, period_it->second,
                                   config.period_tolerance))
                    cause = ChangeCause::Periodic;
            }

            attributed.push_back(
                {probe.probe, asn.value_or(0), change, cause});
        }
    }
    return attributed;
}

ChangeAttribution attribute_changes(const AnalysisResults& results,
                                    const bgp::PrefixTable& table,
                                    const bgp::AsRegistry& registry,
                                    const ChangeAttributionConfig& config) {
    ChangeAttribution attribution;
    attribution.all.as_name = "All";
    std::map<std::uint32_t, ChangeAttributionRow> rows;

    for (const auto& entry :
         attribute_changes_detailed(results, table, config)) {
        count(attribution.all, entry.cause);
        if (entry.asn == 0) continue;
        auto [it, inserted] = rows.try_emplace(entry.asn);
        if (inserted) {
            it->second.asn = entry.asn;
            if (auto info = registry.find(entry.asn))
                it->second.as_name = info->name;
            else
                it->second.as_name = "AS" + std::to_string(entry.asn);
        }
        count(it->second, entry.cause);
    }

    for (auto& [asn, row] : rows) attribution.by_as.push_back(std::move(row));
    std::sort(attribution.by_as.begin(), attribution.by_as.end(),
              [](const ChangeAttributionRow& a, const ChangeAttributionRow& b) {
                  if (a.total != b.total) return a.total > b.total;
                  return a.asn < b.asn;
              });
    return attribution;
}

void record_change_attribution(const ChangeAttribution& attribution) {
    static const bool block_registered = [] {
        obs::metrics_block("change_attribution");
        return true;
    }();
    (void)block_registered;
    const ChangeAttributionRow& all = attribution.all;
    obs::counter("change_attribution.total").inc(std::uint64_t(all.total));
    obs::counter("change_attribution.periodic").inc(std::uint64_t(all.periodic));
    obs::counter("change_attribution.network").inc(std::uint64_t(all.network));
    obs::counter("change_attribution.power").inc(std::uint64_t(all.power));
    obs::counter("change_attribution.administrative")
        .inc(std::uint64_t(all.administrative));
    obs::counter("change_attribution.unknown").inc(std::uint64_t(all.unknown));
}

std::string render_change_attribution(const ChangeAttribution& attribution) {
    std::vector<std::vector<std::string>> rows;
    auto fields = [](const ChangeAttributionRow& row) {
        auto pct = [&](int part) { return fmt(row.pct(part), 1) + "%"; };
        return std::vector<std::string>{
            row.as_name,
            row.asn == 0 ? "-" : std::to_string(row.asn),
            std::to_string(row.total),
            pct(row.periodic),
            pct(row.network),
            pct(row.power),
            pct(row.administrative),
            pct(row.unknown)};
    };
    rows.push_back(fields(attribution.all));
    for (const auto& row : attribution.by_as) rows.push_back(fields(row));
    return chart::render_table({"AS", "ASN", "Changes", "Periodic", "Network",
                                "Power", "Admin", "Unknown"},
                               rows);
}

}  // namespace dynaddr::core

#pragma once

#include <span>

#include "core/address_change.hpp"
#include "netcore/histogram.hpp"

namespace dynaddr::core {

/// The paper's §4.1 metric. For a duration d and a set of interior spans
/// D, the total time fraction is f_d = d·n(d)/Σ(D): the fraction of all
/// observed address time spent in tenures of (quantized) length d. Modes
/// of this distribution expose periodic renumbering far more clearly than
/// a plain duration CDF, because long periodic tenures dominate the time
/// axis even when short outage-induced tenures dominate the event count.
///
/// Implementation: a weighted CDF over quantized duration (hours) where
/// each span contributes weight = its own quantized duration.
class TotalTimeFraction {
public:
    /// Adds one interior span.
    void add(const AddressSpan& span);

    /// Adds all spans of a probe.
    void add_all(std::span<const AddressSpan> spans);

    /// f_d at the quantized duration `hours` (exact-match mode mass).
    [[nodiscard]] double fraction_at(double hours) const;

    /// Cumulative fraction of total address time in durations <= hours.
    [[nodiscard]] double fraction_at_or_below(double hours) const;

    /// Σ(D) in hours (quantized).
    [[nodiscard]] double total_hours() const { return cdf_.total_weight(); }

    /// Number of spans added.
    [[nodiscard]] std::size_t span_count() const { return cdf_.sample_count(); }

    /// Durations carrying at least `min_fraction` of total time, largest
    /// mass first — candidate periodic durations.
    [[nodiscard]] std::vector<stats::CdfPoint> modes(double min_fraction) const {
        return cdf_.modes(min_fraction);
    }

    /// The full CDF (x = duration in hours, y = cumulative time fraction)
    /// as plotted in the paper's Figures 1-3.
    [[nodiscard]] const stats::Cdf& cdf() const { return cdf_; }

private:
    stats::Cdf cdf_;
};

}  // namespace dynaddr::core

#include "core/report.hpp"

#include <cstdio>

#include "netcore/ascii_chart.hpp"
#include "netcore/obs/log.hpp"

DYNADDR_LOG_MODULE(report);

namespace dynaddr::core {

std::string fmt(double value, int decimals) {
    char buffer[48];
    std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
    return buffer;
}

std::string render_table2(const FilterReport& report) {
    std::vector<std::vector<std::string>> rows;
    auto add = [&](ProbeCategory category) {
        rows.push_back({category_name(category),
                        std::to_string(report.count(category))});
    };
    rows.push_back({"Total probes", std::to_string(report.total())});
    add(ProbeCategory::NeverChanged);
    add(ProbeCategory::DualStack);
    add(ProbeCategory::Ipv6Only);
    add(ProbeCategory::TaggedMultihomed);
    add(ProbeCategory::AlternatingMultihomed);
    add(ProbeCategory::TestingAddressOnly);
    add(ProbeCategory::Analyzable);
    return chart::render_table({"Category", "Probes"}, rows);
}

namespace {

std::vector<std::string> table5_fields(const Table5Row& row) {
    return {row.as_name,
            row.asn == 0 ? "-" : std::to_string(row.asn),
            row.country.empty() ? "-" : row.country,
            fmt(row.d_hours, 0),
            std::to_string(row.probes_with_change),
            std::to_string(row.periodic_probes),
            fmt(row.pct_over_half, 0) + "%",
            fmt(row.pct_over_three_quarters, 0) + "%",
            fmt(row.pct_max_le_d, 0) + "%",
            fmt(row.pct_harmonic, 0) + "%"};
}

}  // namespace

std::string render_table5(const PeriodicityAnalysis& analysis) {
    std::vector<std::vector<std::string>> rows;
    for (const auto& row : analysis.all_rows) rows.push_back(table5_fields(row));
    for (const auto& row : analysis.as_rows) rows.push_back(table5_fields(row));
    return chart::render_table({"AS", "ASN", "Country", "d(h)", "N", "f>0.25",
                                "f>0.5", "f>0.75", "MAX<=d", "Harmonic"},
                               rows);
}

std::string render_table6(const CondProbAnalysis& analysis) {
    std::vector<std::vector<std::string>> rows;
    auto fields = [](const Table6Row& row) {
        return std::vector<std::string>{
            row.as_name,
            row.asn == 0 ? "-" : std::to_string(row.asn),
            row.country.empty() ? "-" : row.country,
            std::to_string(row.n),
            fmt(row.pct_nw_over, 1) + "%",
            fmt(row.pct_nw_one, 1) + "%",
            fmt(row.pct_pw_over, 1) + "%",
            fmt(row.pct_pw_one, 1) + "%"};
    };
    rows.push_back(fields(analysis.all));
    for (const auto& row : analysis.as_rows) rows.push_back(fields(row));
    return chart::render_table({"AS", "ASN", "Country", "N", "P(ac|nw)>0.8",
                                "P(ac|nw)=1", "P(ac|pw)>0.8", "P(ac|pw)=1"},
                               rows);
}

std::string render_table7(const PrefixChangeAnalysis& analysis) {
    std::vector<std::vector<std::string>> rows;
    auto fields = [](const Table7Row& row) {
        return std::vector<std::string>{
            row.as_name,
            row.asn == 0 ? "-" : std::to_string(row.asn),
            row.country.empty() ? "-" : row.country,
            std::to_string(row.total_changes),
            std::to_string(row.diff_bgp) + " (" + fmt(row.pct_bgp(), 0) + "%)",
            std::to_string(row.diff_16) + " (" + fmt(row.pct_16(), 0) + "%)",
            std::to_string(row.diff_8) + " (" + fmt(row.pct_8(), 0) + "%)"};
    };
    rows.push_back(fields(analysis.all));
    for (const auto& row : analysis.as_rows) rows.push_back(fields(row));
    return chart::render_table(
        {"AS", "ASN", "Country", "Changes", "Diff BGP", "Diff /16", "Diff /8"},
        rows);
}

std::string render_firmware_series(const FirmwareAnalysis& analysis,
                                   net::TimeInterval window) {
    std::string out = "Unique probes rebooting per day (median " +
                      fmt(analysis.median_per_day, 1) + "):\n";
    // Weekly aggregation keeps the series printable; spikes still pop.
    std::vector<std::pair<std::string, double>> bars;
    int week_total = 0, week_start = 0;
    for (const auto& [day, count] : analysis.probes_rebooted_per_day) {
        if (day / 7 != week_start) {
            bars.emplace_back(
                (window.begin + net::Duration::days(week_start * 7)).to_string()
                    .substr(0, 10),
                week_total);
            week_total = 0;
            week_start = day / 7;
        }
        week_total += count;
    }
    if (week_total > 0)
        bars.emplace_back(
            (window.begin + net::Duration::days(week_start * 7)).to_string()
                .substr(0, 10),
            week_total);
    out += chart::render_bar_chart(bars, 50);
    out += "Inferred firmware release days:\n";
    for (const auto& day : analysis.release_days)
        out += "  " + day.to_string().substr(0, 10) + "\n";
    return out;
}

std::string render_summary(const AnalysisResults& results) {
    std::size_t changes = 0, spans = 0, nw = 0, pw = 0;
    for (const auto& probe : results.changes) {
        changes += probe.changes.size();
        spans += probe.spans.size();
    }
    for (const auto& [probe, list] : results.network_outages) nw += list.size();
    for (const auto& [probe, list] : results.power_outages) pw += list.size();
    std::string out;
    out += "window: " + results.window.begin.to_string() + " .. " +
           results.window.end.to_string() + "\n";
    out += "probes: " + std::to_string(results.filter.total()) + " total, " +
           std::to_string(results.filter.count(ProbeCategory::Analyzable)) +
           " analyzable (" + std::to_string(results.mapping.single_as.size()) +
           " single-AS, " + std::to_string(results.mapping.multi_as.size()) +
           " multi-AS)\n";
    out += "address changes: " + std::to_string(changes) + ", interior spans: " +
           std::to_string(spans) + "\n";
    out += "detected outages: " + std::to_string(nw) + " network, " +
           std::to_string(pw) + " power\n";
    DYNADDR_LOG(Debug, report, "rendered summary: ", changes, " changes, ",
                nw + pw, " outages, ", out.size(), " bytes");
    return out;
}

}  // namespace dynaddr::core

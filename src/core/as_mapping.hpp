#pragma once

#include <map>
#include <optional>
#include <set>
#include <span>

#include "bgp/prefix_table.hpp"
#include "core/conlog.hpp"

namespace dynaddr::core {

/// Result of mapping every probe's addresses to origin ASes with the
/// monthly IP-to-AS table (paper §3.3): a probe with addresses from more
/// than one AS is a "multiple ASes" probe — its cross-AS changes are
/// discarded for geographic analysis and the whole probe is dropped from
/// AS-level analysis.
struct AsMapping {
    /// Probes whose every mapped address belongs to one AS.
    std::map<atlas::ProbeId, std::uint32_t> single_as;
    /// Probes with addresses in two or more ASes.
    std::set<atlas::ProbeId> multi_as;
    /// Probes none of whose addresses were in the table.
    std::set<atlas::ProbeId> unmapped;

    /// The AS of a single-AS probe, nullopt otherwise.
    [[nodiscard]] std::optional<std::uint32_t> as_of(atlas::ProbeId probe) const {
        auto it = single_as.find(probe);
        if (it == single_as.end()) return std::nullopt;
        return it->second;
    }
};

/// Maps each probe using the origin AS of each connection's address at the
/// month of that connection's start.
AsMapping map_probes_to_as(std::span<const ProbeLog> logs,
                           const bgp::PrefixTable& table);

}  // namespace dynaddr::core

#pragma once

// Push-based analysis pipeline: open(window) → feed(...) → finish().
//
// The batch pipeline holds a whole DatasetBundle plus every intermediate
// vector in RAM — a dead end for million-CPE simulated years. This
// consumer runs the paper's per-probe analyses (filtering funnel, change
// extraction, IPv6 privacy, AS mapping, network/power outage detection)
// the moment a probe's records are complete, keeping only O(probes)
// state plus the derived analysis output; the cross-population stages
// (firmware spikes, periodicity, geography, prefixes, conditional
// probabilities) run once at finish() over that compact state.
//
// Ordering contract (what the columnar bundle writer guarantees): each
// channel (connection log, k-root, uptime) is fed with non-decreasing
// probe ids, records time-sorted within a probe; a probe's metadata is
// fed before the probe is sealed. seal_through(p) declares that no
// channel will deliver further records for probes <= p, which is what
// lets the pipeline finalize and free them. Violations throw Error.
//
// Determinism: finish() produces results byte-identical to
// AnalysisPipeline::run_reference() on the same (grouped) input, for any
// thread count — probes finalize in ascending id order and merge
// sequentially, mirroring the reference's shard/merge contract.

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace dynaddr::core {

class StreamingPipeline {
public:
    struct Options {
        PipelineConfig config;
        /// Keep cleaned per-probe logs in results.filter.analyzable. The
        /// batch adapter needs them (the reference results carry them);
        /// pure streaming consumers turn this off, dropping the one
        /// O(records) component of AnalysisResults.
        bool keep_analyzable_logs = true;
        /// Sealed probes queued before a parallel finalize flush. The
        /// batch is the unit handed to the thread pool; results still
        /// merge in probe order.
        std::size_t finalize_batch = 64;
    };

    /// `table` and `registry` must outlive the pipeline.
    StreamingPipeline(const bgp::PrefixTable& table,
                      const bgp::AsRegistry& registry, Options options);
    StreamingPipeline(const bgp::PrefixTable& table,
                      const bgp::AsRegistry& registry)
        : StreamingPipeline(table, registry, Options{}) {}
    ~StreamingPipeline();
    StreamingPipeline(const StreamingPipeline&) = delete;
    StreamingPipeline& operator=(const StreamingPipeline&) = delete;

    /// Starts a run. Without a window, one is derived from the fed
    /// connection log at finish() (min start .. max end + 1 s), matching
    /// the reference; finishing with no window and no connection records
    /// throws the reference's "empty connection log" error.
    void open(std::optional<net::TimeInterval> window = std::nullopt);

    // -- push interface -----------------------------------------------------
    void feed_metadata(const atlas::ProbeMetadata& meta);
    void feed_connection(const atlas::ConnectionLogEntry& entry);
    void feed_kroot(const atlas::KRootPingRecord& record);
    void feed_uptime(const atlas::UptimeRecord& record);

    /// No further records will arrive for probes <= `probe` on any
    /// channel; their analyses run now and their raw buffers are freed.
    void seal_through(atlas::ProbeId probe);

    /// Replays an in-memory bundle through the push interface using the
    /// reference pipeline's own grouping helpers, so grouping quirks
    /// (duplicate-run handling, per-probe entry sort) match it exactly.
    void feed_bundle(const atlas::DatasetBundle& bundle);

    /// Runs the cross-population stages and returns the results. The
    /// pipeline is spent afterwards; open() starts a fresh run.
    AnalysisResults finish();

    // -- memory accounting (the O(probes) acceptance check) -----------------
    [[nodiscard]] std::size_t probes_seen() const;
    /// Raw records currently buffered for unsealed probes.
    [[nodiscard]] std::size_t buffered_records() const;
    /// High-water mark of buffered_records() over the run: stays at
    /// O(records of the widest probe), not O(records), when the caller
    /// seals as it goes.
    [[nodiscard]] std::size_t peak_buffered_records() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Feeds a columnar binary bundle (atlas::stream_binary_bundle) into an
/// open pipeline: metadata first, then each probe's records in ascending
/// id order with seal_through after each — the O(probes) ingestion path.
/// `lenient` forwards to the binary reader (bad blocks dropped+counted).
void feed_binary_bundle(StreamingPipeline& pipeline,
                        const std::string& directory, bool lenient = false);

}  // namespace dynaddr::core

#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/as_registry.hpp"
#include "core/as_mapping.hpp"
#include "core/outages.hpp"
#include "netcore/histogram.hpp"

namespace dynaddr::core {

/// Thresholds for the conditional-probability analysis (paper §5.3).
struct CondProbConfig {
    /// Minimum outages of a kind before a probe's probability is usable.
    int min_outages = 3;
    /// Table 6 requires at least this many qualifying probes per AS.
    int min_probes_per_as = 5;
    /// Table 6 selects probes with P(ac|nw) above this.
    double high_probability = 0.8;
};

/// Per-probe outage/renumbering tallies.
struct ProbeCondProb {
    atlas::ProbeId probe = 0;
    int network_outages = 0;
    int network_changes = 0;
    int power_outages = 0;
    int power_changes = 0;

    /// P(ac|nw): fraction of network outages with an address change;
    /// nullopt below `min_outages`.
    [[nodiscard]] std::optional<double> p_ac_nw(int min_outages) const {
        if (network_outages < min_outages) return std::nullopt;
        return double(network_changes) / double(network_outages);
    }
    [[nodiscard]] std::optional<double> p_ac_pw(int min_outages) const {
        if (power_outages < min_outages) return std::nullopt;
        return double(power_changes) / double(power_outages);
    }
};

/// Tallies one probe's outage outcomes.
ProbeCondProb tally_probe(atlas::ProbeId probe,
                          std::span<const OutageOutcome> network,
                          std::span<const OutageOutcome> power);

/// One row of the paper's Table 6.
struct Table6Row {
    std::uint32_t asn = 0;  ///< 0 for the "All" row
    std::string as_name;
    std::string country;
    int n = 0;  ///< probes with >= min network AND >= min power outages
    double pct_nw_over = 0.0;  ///< % of N with P(ac|nw) > 0.8
    double pct_nw_one = 0.0;   ///< % with P(ac|nw) == 1
    double pct_pw_over = 0.0;
    double pct_pw_one = 0.0;
};

/// Full conditional-probability analysis.
struct CondProbAnalysis {
    std::vector<ProbeCondProb> probes;
    Table6Row all;
    std::vector<Table6Row> as_rows;  ///< qualifying ASes, descending N
};

/// Builds Table 6 from per-probe tallies. Qualifying rows need
/// `min_probes_per_as` probes that cleared the outage minimum for both
/// kinds (the paper's N definition).
CondProbAnalysis analyze_cond_prob(std::span<const ProbeCondProb> probes,
                                   const AsMapping& mapping,
                                   const bgp::AsRegistry& registry,
                                   const CondProbConfig& config = {});

/// Figure 7/8: CDF over probes of P(ac|outage) for one AS and one outage
/// kind. Probes below the outage minimum are skipped.
stats::Cdf cond_prob_cdf(std::span<const ProbeCondProb> probes,
                         const AsMapping& mapping, std::uint32_t asn,
                         DetectedOutage::Kind kind, int min_outages = 3);

/// Figure 9: per duration bin, total outages and renumbered outages.
struct DurationBinAnalysis {
    stats::BinnedHistogram total = stats::BinnedHistogram::outage_duration_bins();
    stats::BinnedHistogram renumbered =
        stats::BinnedHistogram::outage_duration_bins();

    void add(const OutageOutcome& outcome);
    /// % renumbered in bin, 0 when empty.
    [[nodiscard]] double percent_renumbered(std::size_t bin) const;
};

}  // namespace dynaddr::core

#include "core/admin_renumbering.hpp"

#include <algorithm>
#include <limits>
#include <map>

namespace dynaddr::core {

namespace {

/// One probe's stay on one routed prefix, possibly spanning several
/// consecutive addresses inside it.
struct Departure {
    atlas::ProbeId probe = 0;
    net::TimePoint at;                    ///< last seen on the prefix
    net::IPv4Prefix destination;          ///< routed prefix it moved to
    bool has_destination = false;
};

struct PrefixUse {
    std::vector<Departure> final_departures;  ///< one per probe (its last exit)
    bool still_used_at_end = false;
};

}  // namespace

std::vector<AdminRenumberingEvent> detect_admin_renumbering(
    std::span<const ProbeChanges> probes, const AsMapping& mapping,
    const bgp::PrefixTable& table, net::TimePoint observation_end,
    const AdminRenumberingConfig& config) {
    // (asn, routed prefix) -> usage summary.
    std::map<std::pair<std::uint32_t, net::IPv4Prefix>, PrefixUse> usage;

    for (const auto& probe : probes) {
        auto asn = mapping.as_of(probe.probe);
        if (!asn || probe.changes.empty()) continue;

        // The probe's address sequence with a resolve-time and an end-time
        // per address. The first tenure's start and the last tenure's end
        // are censored; ends are what departures need.
        struct Usage {
            net::IPv4Prefix prefix;
            bool routed = false;
            net::TimePoint end;
        };
        std::vector<Usage> usages;
        auto resolve = [&](net::IPv4Address addr, net::TimePoint at) {
            Usage u;
            if (auto match = table.routed_prefix(addr, at)) {
                u.prefix = match->prefix;
                u.routed = true;
            }
            return u;
        };
        {
            Usage first = resolve(probe.changes.front().from,
                                  probe.changes.front().last_seen);
            first.end = probe.changes.front().last_seen;
            usages.push_back(first);
        }
        for (std::size_t i = 0; i < probe.changes.size(); ++i) {
            Usage u = resolve(probe.changes[i].to, probe.changes[i].first_seen);
            u.end = i + 1 < probe.changes.size() ? probe.changes[i + 1].last_seen
                                                 : observation_end;
            usages.push_back(u);
        }
        // Merge consecutive stays inside the same routed prefix.
        std::vector<Usage> merged;
        for (const auto& u : usages) {
            if (!merged.empty() && merged.back().routed == u.routed &&
                merged.back().prefix == u.prefix)
                merged.back().end = u.end;
            else
                merged.push_back(u);
        }

        // Record each prefix's *final* exit by this probe; the last stay
        // pins its prefix as still-in-use.
        std::map<net::IPv4Prefix, Departure> last_exit;
        for (std::size_t i = 0; i < merged.size(); ++i) {
            if (!merged[i].routed) continue;
            const auto key = std::pair{*asn, merged[i].prefix};
            if (i + 1 == merged.size()) {
                usage[key].still_used_at_end = true;
                last_exit.erase(merged[i].prefix);
                continue;
            }
            Departure departure;
            departure.probe = probe.probe;
            departure.at = merged[i].end;
            if (merged[i + 1].routed) {
                departure.destination = merged[i + 1].prefix;
                departure.has_destination = true;
            }
            last_exit[merged[i].prefix] = departure;
        }
        for (const auto& [prefix, departure] : last_exit)
            usage[{*asn, prefix}].final_departures.push_back(departure);
    }

    std::vector<AdminRenumberingEvent> events;
    for (const auto& [key, use] : usage) {
        if (use.still_used_at_end) continue;  // someone is still on it
        if (int(use.final_departures.size()) < config.min_probes) continue;
        net::TimePoint last{std::numeric_limits<std::int64_t>::min()};
        for (const auto& d : use.final_departures) last = std::max(last, d.at);
        // The prefix must stay quiet through the end of the observation.
        if (observation_end - last < config.quiet_after) continue;
        // En-masse: the burst ending at the last exit must hold enough
        // distinct probes.
        std::vector<const Departure*> burst;
        for (const auto& d : use.final_departures)
            if (d.at >= last - config.departure_window) burst.push_back(&d);
        if (int(burst.size()) < config.min_probes) continue;

        AdminRenumberingEvent event;
        event.asn = key.first;
        event.retired_prefix = key.second;
        event.last_departure = last;
        event.first_departure = last;
        std::map<net::IPv4Prefix, int> destinations;
        for (const Departure* d : burst) {
            event.first_departure = std::min(event.first_departure, d->at);
            if (d->has_destination) ++destinations[d->destination];
        }
        event.probes_moved = int(burst.size());
        int best = 0;
        for (const auto& [prefix, count] : destinations)
            if (count > best) {
                best = count;
                event.destination_prefix = prefix;
            }
        events.push_back(event);
    }
    std::sort(events.begin(), events.end(),
              [](const AdminRenumberingEvent& a, const AdminRenumberingEvent& b) {
                  if (a.asn != b.asn) return a.asn < b.asn;
                  return a.first_departure < b.first_departure;
              });
    return events;
}

}  // namespace dynaddr::core

#include "core/total_time_fraction.hpp"

namespace dynaddr::core {

void TotalTimeFraction::add(const AddressSpan& span) {
    const double hours = quantize_hours(span.duration());
    if (hours <= 0.0) return;  // sub-2.5-minute tenures carry no weight
    cdf_.add(hours, hours);
}

void TotalTimeFraction::add_all(std::span<const AddressSpan> spans) {
    for (const auto& span : spans) add(span);
}

double TotalTimeFraction::fraction_at(double hours) const {
    return cdf_.fraction_at(hours);
}

double TotalTimeFraction::fraction_at_or_below(double hours) const {
    return cdf_.fraction_at_or_below(hours);
}

}  // namespace dynaddr::core

#pragma once

#include <map>
#include <span>
#include <vector>

#include "core/conlog.hpp"
#include "netcore/time.hpp"

namespace dynaddr::core {

/// An outage inferred from the measurement datasets (paper §3.4-3.5).
struct DetectedOutage {
    enum class Kind { Network, Power };
    Kind kind = Kind::Network;
    atlas::ProbeId probe = 0;
    net::TimePoint begin;
    net::TimePoint end;

    [[nodiscard]] net::Duration duration() const { return end - begin; }
};

/// Detector thresholds; defaults follow the paper.
struct OutageDetectorConfig {
    /// An all-pings-lost run is a network outage only when the LTS value
    /// shows the probe lost controller contact: some record's LTS must
    /// exceed this (a healthy probe reports < 240 s).
    std::int64_t min_lts_seconds = 300;
    /// A reboot counts as a power outage when the surrounding gap in
    /// k-root records exceeds this ("reboot coincident with missing
    /// attempted k-root pings"); 240 s cadence means one missing slot is
    /// ~480 s between records.
    net::Duration min_power_gap = net::Duration::seconds(420);
    /// Figure 6 spike rule: a firmware release shows as days with more
    /// than `spike_factor` x median unique-probe reboots...
    double spike_factor = 2.0;
    /// ...for at least this many consecutive days.
    int spike_min_days = 2;
    /// A probe's first reboot within this long after a release is treated
    /// as the firmware install and discarded.
    net::Duration firmware_attribution_window = net::Duration::days(7);
};

/// Network outages from one probe's k-root ping records (sorted by time):
/// maximal runs of all-pings-lost records whose LTS confirms loss of
/// controller contact. Begin/end are the first/last all-lost records, so
/// duration is underestimated by up to two sampling intervals, as the
/// paper notes.
std::vector<DetectedOutage> detect_network_outages(
    std::span<const atlas::KRootPingRecord> records,
    const OutageDetectorConfig& config = {});

/// A reboot inferred from an uptime-counter reset.
struct RebootInference {
    atlas::ProbeId probe = 0;
    net::TimePoint at;  ///< report time minus counter value
};

/// Reboots from one probe's uptime records (sorted by time): every point
/// where the counter went backwards.
std::vector<RebootInference> detect_reboots(
    std::span<const atlas::UptimeRecord> records);

/// Figure 6 output: reboot activity per day and the inferred release days.
struct FirmwareAnalysis {
    /// day-of-window index -> number of unique probes that rebooted.
    std::map<int, int> probes_rebooted_per_day;
    double median_per_day = 0.0;
    /// First day of each spike period, as an absolute time (midnight).
    std::vector<net::TimePoint> release_days;
};

/// Detects firmware-release days from the population-wide reboot series.
FirmwareAnalysis detect_firmware_spikes(std::span<const RebootInference> reboots,
                                        net::TimeInterval window,
                                        const OutageDetectorConfig& config = {});

/// Removes, per probe, the first reboot within the attribution window
/// after each release day (paper §5.2). Input need not be sorted.
std::vector<RebootInference> filter_firmware_reboots(
    std::span<const RebootInference> reboots,
    std::span<const net::TimePoint> release_days,
    const OutageDetectorConfig& config = {});

/// Power outages for one probe: firmware-filtered reboots that coincide
/// with a gap in the probe's k-root records. The outage spans the gap
/// (last record before the reboot to first record after).
std::vector<DetectedOutage> detect_power_outages(
    std::span<const RebootInference> reboots,
    std::span<const atlas::KRootPingRecord> records,
    const OutageDetectorConfig& config = {});

/// What an inter-connection gap was attributed to (paper §3.6 priority:
/// network outage, else power outage, else no outage).
enum class GapCause { NetworkOutage, PowerOutage, NoOutage };

/// One inter-connection gap with its attribution.
struct GapAttribution {
    net::TimeInterval gap;  ///< [end of entry i, start of entry i+1]
    bool address_changed = false;
    GapCause cause = GapCause::NoOutage;
};

/// Attributes every inter-connection gap of one probe's log. An outage is
/// associated with a gap when their intervals overlap (the gap widened by
/// `slack` on both sides to absorb logging jitter).
std::vector<GapAttribution> attribute_gaps(
    const ProbeLog& log, std::span<const DetectedOutage> network,
    std::span<const DetectedOutage> power,
    net::Duration slack = net::Duration::seconds(300));

/// One outage with whether it came with an address change — the unit the
/// paper's conditional probabilities count over.
struct OutageOutcome {
    DetectedOutage outage;
    bool address_change = false;
};

/// For each outage of one probe, decides whether it was accompanied by an
/// address change: it overlaps an inter-connection gap whose flanking
/// connections used different addresses.
std::vector<OutageOutcome> outage_outcomes(
    const ProbeLog& log, std::span<const DetectedOutage> outages,
    net::Duration slack = net::Duration::seconds(300));

/// Convenience: split a (probe,time)-sorted dataset into per-probe spans.
std::map<atlas::ProbeId, std::span<const atlas::KRootPingRecord>>
split_kroot_by_probe(std::span<const atlas::KRootPingRecord> records);
std::map<atlas::ProbeId, std::span<const atlas::UptimeRecord>>
split_uptime_by_probe(std::span<const atlas::UptimeRecord> records);

}  // namespace dynaddr::core

#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace dynaddr::core {

/// Why one address change happened — the paper's title, answered per
/// change. Categories follow §2.3: periodic (ISP session limit),
/// outage-caused (network/power at the CPE), administrative (en-masse
/// prefix migration), or unknown (reboot/reconnect events invisible to
/// the datasets, e.g. a cable re-plug between ping samples).
enum class ChangeCause { Administrative, NetworkOutage, PowerOutage, Periodic, Unknown };

[[nodiscard]] const char* change_cause_name(ChangeCause cause);

/// Attribution tallies for one AS (or the whole population).
struct ChangeAttributionRow {
    std::uint32_t asn = 0;  ///< 0 for the "All" row
    std::string as_name;
    int total = 0;
    int administrative = 0;
    int network = 0;
    int power = 0;
    int periodic = 0;
    int unknown = 0;

    [[nodiscard]] double pct(int part) const {
        return total == 0 ? 0.0 : 100.0 * part / total;
    }
};

struct ChangeAttribution {
    ChangeAttributionRow all;
    std::vector<ChangeAttributionRow> by_as;  ///< descending by total
};

/// Attribution thresholds.
struct ChangeAttributionConfig {
    /// Gap-outage overlap slack (same role as in attribute_gaps).
    net::Duration outage_slack = net::Duration::seconds(300);
    /// Slack around an administrative event's departure burst.
    net::Duration admin_slack = net::Duration::days(2);
    /// Tolerance when matching a tenure against the probe's period.
    double period_tolerance = 0.05;
};

/// One address change with its inferred cause — the per-change form the
/// attribution audit joins against ledger ground truth.
struct AttributedChange {
    atlas::ProbeId probe = 0;
    std::uint32_t asn = 0;  ///< 0 when the probe maps to no AS
    AddressChangeEvent change;
    ChangeCause cause = ChangeCause::Unknown;
};

/// Classifies every address change of every analyzable probe, using the
/// already-computed pipeline results. Priority: administrative, then
/// network outage, then power outage, then periodic (the tenure ending at
/// the change matches the probe's period or a harmonic of it), else
/// unknown. Outage categories are only distinguishable when the bundle
/// carried k-root/uptime data; without it those changes fall to periodic
/// or unknown.
ChangeAttribution attribute_changes(const AnalysisResults& results,
                                    const bgp::PrefixTable& table,
                                    const bgp::AsRegistry& registry,
                                    const ChangeAttributionConfig& config = {});

/// Same classification, returned per change (probe order, change order)
/// instead of tallied. attribute_changes is the tally of this list.
std::vector<AttributedChange> attribute_changes_detailed(
    const AnalysisResults& results, const bgp::PrefixTable& table,
    const ChangeAttributionConfig& config = {});

/// Bumps the change_attribution.* counters — the machine-readable form of
/// the attribution table (pattern of table2_funnel). Call once per run.
void record_change_attribution(const ChangeAttribution& attribution);

/// Text rendering in the house table style.
std::string render_change_attribution(const ChangeAttribution& attribution);

}  // namespace dynaddr::core

#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/admin_renumbering.hpp"
#include "core/as_mapping.hpp"
#include "core/cond_prob.hpp"
#include "core/filtering.hpp"
#include "core/geography.hpp"
#include "core/ipv6_privacy.hpp"
#include "core/outages.hpp"
#include "core/periodicity.hpp"
#include "core/prefix_change.hpp"

namespace dynaddr::core {

/// All analysis knobs in one place.
struct PipelineConfig {
    FilterConfig filter;
    PeriodicityConfig periodicity;
    OutageDetectorConfig outage;
    CondProbConfig cond_prob;
    AdminRenumberingConfig admin;
    Ipv6PrivacyConfig ipv6;
    /// Executor count for the per-probe pipeline stages (change
    /// extraction, reboot detection, the §5 outage loop). 0 = hardware
    /// concurrency, 1 = single-threaded. Output is bit-identical for any
    /// value: shards merge in probe order (see netcore/parallel.hpp).
    std::size_t threads = 0;
};

/// Everything the pipeline derives from one dataset bundle — the material
/// for every table and figure in the paper.
struct AnalysisResults {
    net::TimeInterval window;

    // §3.2-3.3 — Table 2
    FilterReport filter;
    AsMapping mapping;  ///< over analyzable probes

    /// Hardware versions of the analyzable probes that appear in the probe
    /// archive (empty when the bundle ships no probe metadata). The §5
    /// power detector only trusts v3 uptime semantics, so downstream
    /// consumers — notably the attribution audit — use this to scope
    /// power-outage expectations to probes the detector is allowed to see.
    std::map<atlas::ProbeId, atlas::ProbeVersion> probe_versions;

    // §3.1 — changes & durations, one entry per analyzable probe
    std::vector<ProbeChanges> changes;

    // §4 — Table 5, Figures 1-5
    PeriodicityAnalysis periodicity;
    GeographyAnalysis geography;

    // §6 — Table 7
    PrefixChangeAnalysis prefix_changes;

    // §8 future work — en-masse administrative renumbering
    std::vector<AdminRenumberingEvent> admin_events;

    // §8 future work — IPv6 privacy-extension rotation, computed over the
    // probes the IPv4 filtering discards (dual-stack, IPv6-only)
    Ipv6PrivacyAnalysis ipv6_privacy;

    // §5 — Table 6, Figures 6-9 (empty when the bundle has no k-root or
    // uptime data)
    FirmwareAnalysis firmware;
    std::map<atlas::ProbeId, std::vector<DetectedOutage>> network_outages;
    std::map<atlas::ProbeId, std::vector<DetectedOutage>> power_outages;
    std::map<atlas::ProbeId, std::vector<OutageOutcome>> network_outcomes;
    std::map<atlas::ProbeId, std::vector<OutageOutcome>> power_outcomes;
    CondProbAnalysis cond_prob;

    /// Changes of a given analyzable probe, nullptr when absent.
    [[nodiscard]] const ProbeChanges* changes_of(atlas::ProbeId probe) const;
};

/// Figure 9 helper: duration-binned outage outcomes for one AS, optionally
/// restricted to one outage kind (nullopt = both, as the paper plots).
DurationBinAnalysis duration_bins_for_as(
    const AnalysisResults& results, std::uint32_t asn,
    std::optional<DetectedOutage::Kind> kind = std::nullopt);

/// The end-to-end reproduction of the paper's methodology. Feed it the
/// dataset bundle (connection logs + k-root + uptime + probe archive), the
/// monthly IP-to-AS table, and the AS registry; it runs filtering, change
/// extraction, periodicity, geography, prefix, outage and conditional-
/// probability analyses. It never touches simulator ground truth.
class AnalysisPipeline {
public:
    explicit AnalysisPipeline(PipelineConfig config = {}) : config_(config) {}

    /// Runs everything. `window` bounds the observation period (used for
    /// firmware day indexing); when nullopt it is derived from the data.
    /// Implemented as a thin adapter over core::StreamingPipeline: the
    /// bundle is replayed probe by probe through the push-based
    /// accumulators, producing byte-identical results to run_reference().
    AnalysisResults run(const atlas::DatasetBundle& bundle,
                        const bgp::PrefixTable& table,
                        const bgp::AsRegistry& registry,
                        std::optional<net::TimeInterval> window = std::nullopt) const;

    /// The historical batch implementation, one whole-population stage at
    /// a time. Kept verbatim as the differential oracle for the streaming
    /// pipeline: tests assert run() == run_reference() byte for byte.
    AnalysisResults run_reference(
        const atlas::DatasetBundle& bundle, const bgp::PrefixTable& table,
        const bgp::AsRegistry& registry,
        std::optional<net::TimeInterval> window = std::nullopt) const;

    [[nodiscard]] const PipelineConfig& config() const { return config_; }

private:
    PipelineConfig config_;
};

}  // namespace dynaddr::core

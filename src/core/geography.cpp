#include "core/geography.hpp"

#include <unordered_map>

namespace dynaddr::core {

std::optional<bgp::Continent> continent_of_country(const std::string& code) {
    using bgp::Continent;
    static const std::unordered_map<std::string, Continent> table = {
        // Europe
        {"DE", Continent::Europe},  {"FR", Continent::Europe},
        {"GB", Continent::Europe},  {"UK", Continent::Europe},
        {"NL", Continent::Europe},  {"BE", Continent::Europe},
        {"AT", Continent::Europe},  {"CH", Continent::Europe},
        {"IT", Continent::Europe},  {"ES", Continent::Europe},
        {"PT", Continent::Europe},  {"PL", Continent::Europe},
        {"CZ", Continent::Europe},  {"SK", Continent::Europe},
        {"HU", Continent::Europe},  {"HR", Continent::Europe},
        {"SI", Continent::Europe},  {"RS", Continent::Europe},
        {"RO", Continent::Europe},  {"BG", Continent::Europe},
        {"GR", Continent::Europe},  {"SE", Continent::Europe},
        {"NO", Continent::Europe},  {"FI", Continent::Europe},
        {"DK", Continent::Europe},  {"IE", Continent::Europe},
        {"IS", Continent::Europe},  {"EE", Continent::Europe},
        {"LV", Continent::Europe},  {"LT", Continent::Europe},
        {"RU", Continent::Europe},  {"UA", Continent::Europe},
        {"BY", Continent::Europe},  {"MD", Continent::Europe},
        {"LU", Continent::Europe},  {"MT", Continent::Europe},
        {"CY", Continent::Europe},  {"AL", Continent::Europe},
        {"BA", Continent::Europe},  {"MK", Continent::Europe},
        {"ME", Continent::Europe},
        // North America
        {"US", Continent::NorthAmerica}, {"CA", Continent::NorthAmerica},
        {"MX", Continent::NorthAmerica}, {"CR", Continent::NorthAmerica},
        {"PA", Continent::NorthAmerica}, {"GT", Continent::NorthAmerica},
        {"CU", Continent::NorthAmerica}, {"DO", Continent::NorthAmerica},
        // Asia
        {"CN", Continent::Asia}, {"JP", Continent::Asia},
        {"KR", Continent::Asia}, {"IN", Continent::Asia},
        {"KZ", Continent::Asia}, {"SG", Continent::Asia},
        {"HK", Continent::Asia}, {"TW", Continent::Asia},
        {"TH", Continent::Asia}, {"MY", Continent::Asia},
        {"ID", Continent::Asia}, {"PH", Continent::Asia},
        {"VN", Continent::Asia}, {"IL", Continent::Asia},
        {"TR", Continent::Asia}, {"AE", Continent::Asia},
        {"SA", Continent::Asia}, {"IR", Continent::Asia},
        {"PK", Continent::Asia}, {"BD", Continent::Asia},
        {"LK", Continent::Asia}, {"NP", Continent::Asia},
        {"GE", Continent::Asia}, {"AM", Continent::Asia},
        {"AZ", Continent::Asia}, {"UZ", Continent::Asia},
        // Africa
        {"ZA", Continent::Africa}, {"EG", Continent::Africa},
        {"NG", Continent::Africa}, {"KE", Continent::Africa},
        {"MU", Continent::Africa}, {"SN", Continent::Africa},
        {"MA", Continent::Africa}, {"TN", Continent::Africa},
        {"DZ", Continent::Africa}, {"GH", Continent::Africa},
        {"TZ", Continent::Africa}, {"UG", Continent::Africa},
        {"ZM", Continent::Africa}, {"ZW", Continent::Africa},
        {"AO", Continent::Africa}, {"CM", Continent::Africa},
        // South America
        {"BR", Continent::SouthAmerica}, {"AR", Continent::SouthAmerica},
        {"CL", Continent::SouthAmerica}, {"UY", Continent::SouthAmerica},
        {"CO", Continent::SouthAmerica}, {"PE", Continent::SouthAmerica},
        {"VE", Continent::SouthAmerica}, {"EC", Continent::SouthAmerica},
        {"BO", Continent::SouthAmerica}, {"PY", Continent::SouthAmerica},
        // Oceania
        {"AU", Continent::Oceania}, {"NZ", Continent::Oceania},
        {"FJ", Continent::Oceania}, {"PG", Continent::Oceania},
    };
    auto it = table.find(code);
    if (it == table.end()) return std::nullopt;
    return it->second;
}

GeographyAnalysis analyze_geography(
    std::span<const ProbeChanges> probes,
    std::span<const atlas::ProbeMetadata> metadata) {
    std::unordered_map<atlas::ProbeId, const atlas::ProbeMetadata*> meta_by_id;
    for (const auto& meta : metadata) meta_by_id[meta.probe] = &meta;

    GeographyAnalysis analysis;
    for (const auto& probe : probes) {
        auto it = meta_by_id.find(probe.probe);
        const std::string country =
            it == meta_by_id.end() ? std::string{} : it->second->country_code;
        const auto continent = continent_of_country(country);
        if (!continent) {
            ++analysis.unlocated_probes;
            continue;
        }
        analysis.by_continent[*continent].add_all(probe.spans);
        analysis.by_country[country].add_all(probe.spans);
    }
    return analysis;
}

}  // namespace dynaddr::core

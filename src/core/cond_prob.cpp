#include "core/cond_prob.hpp"

#include <algorithm>
#include <map>

namespace dynaddr::core {

ProbeCondProb tally_probe(atlas::ProbeId probe,
                          std::span<const OutageOutcome> network,
                          std::span<const OutageOutcome> power) {
    ProbeCondProb tally;
    tally.probe = probe;
    for (const auto& outcome : network) {
        ++tally.network_outages;
        if (outcome.address_change) ++tally.network_changes;
    }
    for (const auto& outcome : power) {
        ++tally.power_outages;
        if (outcome.address_change) ++tally.power_changes;
    }
    return tally;
}

namespace {

Table6Row build_row(std::span<const ProbeCondProb* const> probes,
                    const CondProbConfig& config) {
    Table6Row row;
    row.n = int(probes.size());
    int nw_over = 0, nw_one = 0, pw_over = 0, pw_one = 0;
    for (const ProbeCondProb* probe : probes) {
        const double nw = *probe->p_ac_nw(config.min_outages);
        const double pw = *probe->p_ac_pw(config.min_outages);
        if (nw > config.high_probability) ++nw_over;
        if (nw == 1.0) ++nw_one;
        if (pw > config.high_probability) ++pw_over;
        if (pw == 1.0) ++pw_one;
    }
    auto pct = [&](int k) {
        return row.n == 0 ? 0.0 : 100.0 * double(k) / double(row.n);
    };
    row.pct_nw_over = pct(nw_over);
    row.pct_nw_one = pct(nw_one);
    row.pct_pw_over = pct(pw_over);
    row.pct_pw_one = pct(pw_one);
    return row;
}

}  // namespace

CondProbAnalysis analyze_cond_prob(std::span<const ProbeCondProb> probes,
                                   const AsMapping& mapping,
                                   const bgp::AsRegistry& registry,
                                   const CondProbConfig& config) {
    CondProbAnalysis analysis;
    analysis.probes.assign(probes.begin(), probes.end());

    // Probes qualifying for Table 6: enough outages of both kinds.
    std::vector<const ProbeCondProb*> qualified;
    for (const auto& probe : analysis.probes)
        if (probe.p_ac_nw(config.min_outages) && probe.p_ac_pw(config.min_outages))
            qualified.push_back(&probe);

    analysis.all = build_row(qualified, config);
    analysis.all.as_name = "All";

    std::map<std::uint32_t, std::vector<const ProbeCondProb*>> by_as;
    for (const ProbeCondProb* probe : qualified)
        if (auto asn = mapping.as_of(probe->probe)) by_as[*asn].push_back(probe);

    for (const auto& [asn, members] : by_as) {
        if (int(members.size()) < config.min_probes_per_as) continue;
        Table6Row row = build_row(members, config);
        row.asn = asn;
        if (auto info = registry.find(asn)) {
            row.as_name = info->name;
            row.country = info->country_code;
        } else {
            row.as_name = "AS" + std::to_string(asn);
        }
        analysis.as_rows.push_back(row);
    }
    std::sort(analysis.as_rows.begin(), analysis.as_rows.end(),
              [](const Table6Row& a, const Table6Row& b) {
                  if (a.n != b.n) return a.n > b.n;
                  return a.asn < b.asn;
              });
    return analysis;
}

stats::Cdf cond_prob_cdf(std::span<const ProbeCondProb> probes,
                         const AsMapping& mapping, std::uint32_t asn,
                         DetectedOutage::Kind kind, int min_outages) {
    stats::Cdf cdf;
    for (const auto& probe : probes) {
        auto probe_as = mapping.as_of(probe.probe);
        if (!probe_as || *probe_as != asn) continue;
        const auto p = kind == DetectedOutage::Kind::Network
                           ? probe.p_ac_nw(min_outages)
                           : probe.p_ac_pw(min_outages);
        if (p) cdf.add(*p);
    }
    return cdf;
}

void DurationBinAnalysis::add(const OutageOutcome& outcome) {
    const double seconds = double(outcome.outage.duration().count());
    total.add(seconds);
    if (outcome.address_change) renumbered.add(seconds);
}

double DurationBinAnalysis::percent_renumbered(std::size_t bin) const {
    const double all = total.bin_weight(bin);
    return all <= 0.0 ? 0.0 : 100.0 * renumbered.bin_weight(bin) / all;
}

}  // namespace dynaddr::core

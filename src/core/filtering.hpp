#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/conlog.hpp"

namespace dynaddr::core {

/// Why a probe was excluded from analysis (paper Table 2), or Analyzable.
enum class ProbeCategory {
    Analyzable,
    NeverChanged,          ///< one IPv4 address for the whole window
    DualStack,             ///< mixes IPv4 and IPv6 connections
    Ipv6Only,              ///< connects solely over IPv6
    TaggedMultihomed,      ///< carries a multihomed/datacentre/core tag
    AlternatingMultihomed, ///< behavioural signature: returns to a fixed address
    TestingAddressOnly,    ///< only change was from the RIPE testing address
};

/// Human-readable name for a category.
[[nodiscard]] const char* category_name(ProbeCategory category);

/// Filtering knobs; defaults follow the paper.
struct FilterConfig {
    /// Tags that mark a probe multihomed/datacenter (paper §3.2).
    std::vector<std::string> multihomed_tags = {"multihomed", "datacentre", "core"};
    /// A probe is behaviourally multihomed when it *returns* to some
    /// previously used address (after using a different one) at least this
    /// many times — the alternating-addresses signature.
    int min_returns_for_multihomed = 3;
};

/// Outcome of the Table 2 pipeline.
struct FilterReport {
    /// Category of every input probe.
    std::map<atlas::ProbeId, ProbeCategory> category;
    /// Count per category.
    std::map<ProbeCategory, int> counts;
    /// Cleaned logs of analyzable probes: testing-address entries removed,
    /// sorted by probe id.
    std::vector<ProbeLog> analyzable;

    [[nodiscard]] int count(ProbeCategory c) const {
        auto it = counts.find(c);
        return it == counts.end() ? 0 : it->second;
    }
    [[nodiscard]] int total() const {
        int sum = 0;
        for (const auto& [c, n] : counts) sum += n;
        return sum;
    }
};

/// Runs the paper's probe-filtering pipeline (§3.2-3.3) over per-probe
/// logs plus the probe-archive metadata (for tags). Classification order:
/// IPv6-only, dual-stack, tagged, behaviourally-alternating, testing-
/// address-only, never-changed; survivors are analyzable. The categories
/// partition the input.
FilterReport filter_probes(std::span<const ProbeLog> logs,
                           std::span<const atlas::ProbeMetadata> metadata,
                           const FilterConfig& config = {});

/// True when the log shows the alternating-addresses multihomed
/// behaviour (exposed for targeted testing).
bool is_alternating_multihomed(const ProbeLog& log, int min_returns);

}  // namespace dynaddr::core

#include "core/streaming_pipeline.hpp"

#include <algorithm>
#include <span>
#include <unordered_map>
#include <utility>

#include "atlas/binary_bundle.hpp"
#include "core/pipeline_internal.hpp"
#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/memaccount.hpp"
#include "netcore/obs/progress.hpp"
#include "netcore/obs/trace.hpp"
#include "netcore/parallel.hpp"

DYNADDR_LOG_MODULE(streaming);

namespace dynaddr::core {

namespace {

/// Raw input buffered for one not-yet-sealed probe.
struct RawProbe {
    atlas::ProbeId probe = 0;
    std::vector<atlas::ConnectionLogEntry> entries;
    /// Whether entries arrived already (start, end)-sorted. The grouped
    /// feeds (feed_bundle, the binary reader) always do; out-of-order raw
    /// feeds are sorted at finalize with group_by_probe's comparator.
    bool entries_sorted = true;
    std::vector<atlas::KRootPingRecord> kroot;
    std::vector<atlas::UptimeRecord> uptime;
    std::vector<atlas::ProbeMetadata> metadata;

    [[nodiscard]] std::size_t records() const {
        return entries.size() + kroot.size() + uptime.size();
    }
};

/// Power-outage candidate derived from one pre-firmware-filter reboot.
/// The firmware filter is a cross-population barrier, so finish() decides
/// which reboots survive; everything per-reboot (the k-root gap, the
/// network-overlap suppression, the address-change outcome) is computed
/// here at probe-finalize time, while the probe's raw data is still in
/// memory. Reboots are per-item independent in the reference detectors,
/// so selecting a subset of candidates later reproduces the reference's
/// detect-then-filter result exactly.
struct PowerCandidate {
    net::TimePoint at;        ///< the reboot instant this belongs to
    bool has_outage = false;  ///< flanking k-root gap wide enough
    bool suppressed = false;  ///< window explained by a network outage
    DetectedOutage outage;
    OutageOutcome outcome;    ///< only meaningful when kept
};

/// Everything one sealed probe contributes to the final results.
struct ProbeDerived {
    atlas::ProbeId probe = 0;
    FilterReport filter;       ///< single-probe report; merged then cleared
    Ipv6PrivacyAnalysis ipv6;  ///< single-probe; merged then cleared
    AsMapping mapping;         ///< single-probe; merged then cleared
    bool analyzable = false;
    bool has_kroot = false;
    std::optional<atlas::ProbeVersion> version;
    ProbeChanges changes;
    std::vector<DetectedOutage> network;
    std::vector<OutageOutcome> network_outcomes;
    std::vector<RebootInference> reboots;    ///< pre-filter, record order
    std::vector<PowerCandidate> candidates;  ///< sorted by reboot instant
};

constexpr net::TimePoint kWindowLoSentinel{std::int64_t{1} << 60};
constexpr net::TimePoint kWindowHiSentinel{-(std::int64_t{1} << 60)};

}  // namespace

struct StreamingPipeline::Impl {
    enum Channel { kConnection = 0, kKRoot = 1, kUptime = 2 };

    const bgp::PrefixTable* table;
    const bgp::AsRegistry* registry;
    Options options;

    bool is_open = false;
    std::optional<net::TimeInterval> window;
    std::optional<obs::ObsSpan> run_span;
    std::unique_ptr<par::ThreadPool> pool;

    std::optional<atlas::ProbeId> frontier[3];
    std::optional<atlas::ProbeId> sealed_through;

    std::map<atlas::ProbeId, RawProbe> raw;  ///< open probes, ascending
    std::vector<RawProbe> pending;           ///< sealed, awaiting finalize

    AnalysisResults results;
    std::vector<atlas::ProbeMetadata> all_metadata;
    std::vector<ProbeDerived> derived;  ///< ascending probe id
    net::TimePoint window_lo = kWindowLoSentinel;
    net::TimePoint window_hi = kWindowHiSentinel;
    std::size_t conlog_records = 0;
    std::size_t kroot_records = 0;
    std::size_t uptime_records = 0;
    std::size_t probes_total = 0;
    std::size_t buffered = 0;
    std::size_t peak_buffered = 0;

    /// Capacity accounting (mem.core.streaming): buffered records at
    /// per-record struct size — an estimate of the dominant cost, the
    /// not-yet-sealed raw input — published amortized from channel_feed
    /// and exactly at seal/flush boundaries.
    obs::MemRegistration mem{"core.streaming"};
    std::size_t mem_ops = 0;
    static constexpr std::size_t kRecordBytesEstimate =
        std::max({sizeof(atlas::ConnectionLogEntry),
                  sizeof(atlas::KRootPingRecord),
                  sizeof(atlas::UptimeRecord)});

    void publish_mem() { mem.report(buffered * kRecordBytesEstimate, buffered); }

    void require_open() const {
        if (!is_open)
            throw Error("StreamingPipeline: feed outside open()..finish()");
    }

    RawProbe& raw_for(atlas::ProbeId probe) {
        auto [it, inserted] = raw.try_emplace(probe);
        if (inserted) {
            it->second.probe = probe;
            ++probes_total;
        }
        return it->second;
    }

    /// Ordering checks shared by the three record channels.
    RawProbe& channel_feed(Channel channel, atlas::ProbeId probe) {
        require_open();
        if (sealed_through && probe <= *sealed_through)
            throw Error("StreamingPipeline: record for probe " +
                        std::to_string(probe) + " after seal_through(" +
                        std::to_string(*sealed_through) + ")");
        auto& last = frontier[channel];
        if (last && probe < *last)
            throw Error("StreamingPipeline: probe ids must be non-decreasing "
                        "per channel (got " +
                        std::to_string(probe) + " after " +
                        std::to_string(*last) + ")");
        last = probe;
        ++buffered;
        peak_buffered = std::max(peak_buffered, buffered);
        if ((++mem_ops & 255) == 0) publish_mem();
        return raw_for(probe);
    }

    // -- per-probe analysis (pure; runs on pool threads) --------------------

    [[nodiscard]] ProbeDerived finalize_probe(RawProbe&& probe_raw) const {
        const PipelineConfig& config = options.config;
        ProbeDerived out;
        out.probe = probe_raw.probe;
        for (const auto& meta : probe_raw.metadata)
            out.version = meta.version;  // last wins, like the reference map

        if (!probe_raw.entries.empty()) {
            ProbeLog log{probe_raw.probe, std::move(probe_raw.entries)};
            if (!probe_raw.entries_sorted)
                std::sort(log.entries.begin(), log.entries.end(),
                          [](const atlas::ConnectionLogEntry& a,
                             const atlas::ConnectionLogEntry& b) {
                              if (a.start != b.start) return a.start < b.start;
                              return a.end < b.end;
                          });
            const std::span<const ProbeLog> one{&log, 1};
            out.filter = filter_probes(one, probe_raw.metadata, config.filter);
            out.ipv6 = analyze_ipv6_privacy(one, config.ipv6);
            if (!out.filter.analyzable.empty()) {
                out.analyzable = true;
                const ProbeLog& cleaned = out.filter.analyzable.front();
                out.mapping = map_probes_to_as({&cleaned, 1}, *table);
                out.changes = extract_changes(cleaned);
                if (!probe_raw.kroot.empty()) {
                    out.has_kroot = true;
                    out.network =
                        detect_network_outages(probe_raw.kroot, config.outage);
                    out.network_outcomes = outage_outcomes(cleaned, out.network);
                }
            }
        }

        if (!probe_raw.uptime.empty())
            out.reboots = detect_reboots(probe_raw.uptime);

        // Power candidates: only v3 analyzable probes with k-root data can
        // ever yield power outages (reference §5.1 gating).
        if (out.analyzable && out.has_kroot && !out.reboots.empty() &&
            out.version && *out.version == atlas::ProbeVersion::V3) {
            const ProbeLog& cleaned = out.filter.analyzable.front();
            std::vector<RebootInference> sorted = out.reboots;
            std::sort(sorted.begin(), sorted.end(),
                      [](const RebootInference& a, const RebootInference& b) {
                          return a.at < b.at;
                      });
            out.candidates.reserve(sorted.size());
            for (const auto& reboot : sorted) {
                PowerCandidate candidate;
                candidate.at = reboot.at;
                const auto detected = detect_power_outages(
                    {&reboot, 1}, probe_raw.kroot, config.outage);
                if (!detected.empty()) {
                    candidate.has_outage = true;
                    candidate.outage = detected.front();
                    for (const auto& n : out.network)
                        if (n.begin < candidate.outage.end &&
                            candidate.outage.begin < n.end) {
                            candidate.suppressed = true;
                            break;
                        }
                    if (!candidate.suppressed)
                        candidate.outcome =
                            outage_outcomes(cleaned, {&candidate.outage, 1})
                                .front();
                }
                out.candidates.push_back(candidate);
            }
        }

        if (!options.keep_analyzable_logs) out.filter.analyzable.clear();
        return out;
    }

    /// Sequential, ascending-probe merge of one finalized probe — the
    /// exact order the reference's sorted whole-population loops produce.
    void integrate(ProbeDerived&& d) {
        for (const auto& [probe, category] : d.filter.category)
            results.filter.category.emplace(probe, category);
        for (const auto& [category, count] : d.filter.counts)
            results.filter.counts[category] += count;
        for (auto& log : d.filter.analyzable)
            results.filter.analyzable.push_back(std::move(log));
        d.filter = {};

        for (const auto& view : d.ipv6.probes)
            results.ipv6_privacy.probes.push_back(view);
        results.ipv6_privacy.total_addresses += d.ipv6.total_addresses;
        results.ipv6_privacy.ephemeral_addresses += d.ipv6.ephemeral_addresses;
        results.ipv6_privacy.rotating_probes += d.ipv6.rotating_probes;
        // A single-probe sub-analysis adds at most one rotation sample
        // (weight 1); replay it into the population CDF.
        if (d.ipv6.rotation_cdf.sample_count() > 0 && !d.ipv6.probes.empty())
            results.ipv6_privacy.rotation_cdf.add(
                d.ipv6.probes.front().rotation_hours);
        d.ipv6 = {};

        for (const auto& [probe, asn] : d.mapping.single_as)
            results.mapping.single_as.emplace(probe, asn);
        for (const auto probe : d.mapping.multi_as)
            results.mapping.multi_as.insert(probe);
        for (const auto probe : d.mapping.unmapped)
            results.mapping.unmapped.insert(probe);
        d.mapping = {};

        if (d.analyzable) {
            if (d.version) results.probe_versions.emplace(d.probe, *d.version);
            results.changes.push_back(std::move(d.changes));
        }
        derived.push_back(std::move(d));
    }

    void flush_pending() {
        if (pending.empty()) return;
        std::size_t flushed_records = 0;
        for (const auto& probe_raw : pending) flushed_records += probe_raw.records();
        std::vector<ProbeDerived> slots(pending.size());
        {
            obs::ObsSpan span("pipeline.finalize", "pipeline",
                              &detail::pipeline_metrics().finalize_latency);
            pool->parallel_for_shards(pending.size(), [&](std::size_t i) {
                obs::ObsSpan shard("pipeline.finalize.shard", "shard");
                slots[i] = finalize_probe(std::move(pending[i]));
            });
        }
        for (auto& slot : slots) integrate(std::move(slot));
        pending.clear();
        buffered -= flushed_records;
        publish_mem();
    }

    void seal_up_to(atlas::ProbeId probe) {
        auto end = raw.upper_bound(probe);
        for (auto it = raw.begin(); it != end; ++it)
            pending.push_back(std::move(it->second));
        raw.erase(raw.begin(), end);
        if (pending.size() >= options.finalize_batch) flush_pending();
    }

    void seal_all() {
        for (auto& [probe, probe_raw] : raw)
            pending.push_back(std::move(probe_raw));
        raw.clear();
        flush_pending();
    }
};

StreamingPipeline::StreamingPipeline(const bgp::PrefixTable& table,
                                     const bgp::AsRegistry& registry,
                                     Options options)
    : impl_(std::make_unique<Impl>()) {
    impl_->table = &table;
    impl_->registry = &registry;
    if (options.finalize_batch == 0) options.finalize_batch = 1;
    impl_->options = std::move(options);
}

StreamingPipeline::~StreamingPipeline() = default;

void StreamingPipeline::open(std::optional<net::TimeInterval> window) {
    if (impl_->is_open) throw Error("StreamingPipeline: open() while open");
    detail::PipelineMetrics& metrics = detail::pipeline_metrics();
    metrics.runs.inc();
    // Reset per-run state (finish() already cleared most of it; open()
    // after an abandoned run starts clean too). Impl holds an ObsSpan and
    // is not assignable, so swap in a fresh one.
    auto fresh = std::make_unique<Impl>();
    fresh->table = impl_->table;
    fresh->registry = impl_->registry;
    fresh->options = std::move(impl_->options);
    impl_ = std::move(fresh);
    impl_->is_open = true;
    impl_->window = window;
    impl_->run_span.emplace("pipeline.run", "pipeline", &metrics.run_latency);
    impl_->pool = std::make_unique<par::ThreadPool>(
        par::resolve_threads(impl_->options.config.threads));
}

void StreamingPipeline::feed_metadata(const atlas::ProbeMetadata& meta) {
    impl_->require_open();
    if (impl_->sealed_through && meta.probe <= *impl_->sealed_through)
        throw Error("StreamingPipeline: metadata for probe " +
                    std::to_string(meta.probe) + " after seal_through(" +
                    std::to_string(*impl_->sealed_through) + ")");
    impl_->all_metadata.push_back(meta);
    impl_->raw_for(meta.probe).metadata.push_back(meta);
}

void StreamingPipeline::feed_connection(const atlas::ConnectionLogEntry& entry) {
    RawProbe& probe_raw =
        impl_->channel_feed(Impl::kConnection, entry.probe);
    if (!probe_raw.entries.empty()) {
        const auto& last = probe_raw.entries.back();
        if (entry.start < last.start ||
            (entry.start == last.start && entry.end < last.end))
            probe_raw.entries_sorted = false;
    }
    probe_raw.entries.push_back(entry);
    ++impl_->conlog_records;
    impl_->window_lo = std::min(impl_->window_lo, entry.start);
    impl_->window_hi = std::max(impl_->window_hi, entry.end);
}

void StreamingPipeline::feed_kroot(const atlas::KRootPingRecord& record) {
    impl_->channel_feed(Impl::kKRoot, record.probe).kroot.push_back(record);
    ++impl_->kroot_records;
}

void StreamingPipeline::feed_uptime(const atlas::UptimeRecord& record) {
    impl_->channel_feed(Impl::kUptime, record.probe).uptime.push_back(record);
    ++impl_->uptime_records;
}

void StreamingPipeline::seal_through(atlas::ProbeId probe) {
    impl_->require_open();
    if (impl_->sealed_through && probe < *impl_->sealed_through)
        throw Error("StreamingPipeline: seal_through must be non-decreasing");
    impl_->sealed_through = probe;
    impl_->seal_up_to(probe);
    // Progress watermark for /top: how far the streaming run has sealed.
    obs::progress_note_sealed_probe(std::int64_t(probe));
    impl_->publish_mem();
}

void StreamingPipeline::feed_bundle(const atlas::DatasetBundle& bundle) {
    impl_->require_open();
    const std::size_t kroot_before = impl_->kroot_records;
    const std::size_t uptime_before = impl_->uptime_records;
    // Metadata first: classification and versioning read it at finalize.
    for (const auto& meta : bundle.probes) feed_metadata(meta);

    // The reference pipeline's own grouping helpers, so its quirks carry
    // over exactly: group_by_probe sorts each probe's entries, and the
    // split maps keep only the *first* contiguous run of an out-of-order
    // probe.
    auto logs = group_by_probe(bundle.connection_log);
    const auto kroot = split_kroot_by_probe(bundle.kroot_pings);
    const auto uptime = split_uptime_by_probe(bundle.uptime_records);

    auto log_it = logs.begin();
    auto kroot_it = kroot.begin();
    auto uptime_it = uptime.begin();
    while (log_it != logs.end() || kroot_it != kroot.end() ||
           uptime_it != uptime.end()) {
        atlas::ProbeId next = std::numeric_limits<atlas::ProbeId>::max();
        if (log_it != logs.end()) next = std::min(next, log_it->probe);
        if (kroot_it != kroot.end()) next = std::min(next, kroot_it->first);
        if (uptime_it != uptime.end()) next = std::min(next, uptime_it->first);

        if (log_it != logs.end() && log_it->probe == next) {
            RawProbe& probe_raw = impl_->channel_feed(Impl::kConnection, next);
            impl_->buffered += log_it->entries.size() - 1;  // channel_feed added 1
            impl_->peak_buffered =
                std::max(impl_->peak_buffered, impl_->buffered);
            impl_->conlog_records += log_it->entries.size();
            for (const auto& entry : log_it->entries) {
                impl_->window_lo = std::min(impl_->window_lo, entry.start);
                impl_->window_hi = std::max(impl_->window_hi, entry.end);
            }
            probe_raw.entries = std::move(log_it->entries);  // pre-sorted
            ++log_it;
        }
        if (kroot_it != kroot.end() && kroot_it->first == next) {
            for (const auto& record : kroot_it->second) feed_kroot(record);
            ++kroot_it;
        }
        if (uptime_it != uptime.end() && uptime_it->first == next) {
            for (const auto& record : uptime_it->second) feed_uptime(record);
            ++uptime_it;
        }
        seal_through(next);
    }
    // The reference's §5 emptiness check looks at the raw vectors, not
    // the (quirky) split maps; mirror that.
    impl_->kroot_records = kroot_before + bundle.kroot_pings.size();
    impl_->uptime_records = uptime_before + bundle.uptime_records.size();
}

AnalysisResults StreamingPipeline::finish() {
    Impl& impl = *impl_;
    impl.require_open();
    detail::PipelineMetrics& metrics = detail::pipeline_metrics();
    impl.seal_all();
    impl.is_open = false;

    AnalysisResults& results = impl.results;
    const PipelineConfig& config = impl.options.config;

    // -- observation window (reference semantics) ---------------------------
    if (impl.window) {
        results.window = *impl.window;
    } else {
        if (impl.conlog_records == 0) throw Error("empty connection log");
        results.window = {impl.window_lo,
                          impl.window_hi + net::Duration::seconds(1)};
    }

    // -- §3: merged funnel + changes ----------------------------------------
    metrics.probes_in.inc(std::uint64_t(results.filter.total()));
    metrics.probes_analyzable.inc(
        std::uint64_t(results.filter.count(ProbeCategory::Analyzable)));
    detail::record_funnel(results.filter);
    DYNADDR_LOG(Info, streaming, "filtered ", results.filter.total(),
                " probes, ", results.filter.count(ProbeCategory::Analyzable),
                " analyzable");
    {
        std::size_t n = 0;
        for (const auto& c : results.changes) n += c.changes.size();
        metrics.changes_extracted.inc(n);
        DYNADDR_LOG(Info, streaming, "extracted ", n,
                    " address changes from ", results.changes.size(),
                    " probes");
    }

    // -- §4/§6/§8: cross-population stages over the compact change state ----
    {
        obs::ObsSpan span("pipeline.periodicity", "pipeline",
                          &metrics.periodicity_latency);
        results.periodicity =
            analyze_periodicity(results.changes, results.mapping,
                                *impl.registry, config.periodicity);
        results.geography =
            analyze_geography(results.changes, impl.all_metadata);
    }
    {
        obs::ObsSpan span("pipeline.prefix_changes", "pipeline",
                          &metrics.prefix_latency);
        results.prefix_changes = analyze_prefix_changes(
            results.changes, results.mapping, *impl.table, *impl.registry);
    }
    results.admin_events =
        detect_admin_renumbering(results.changes, results.mapping, *impl.table,
                                 results.window.end, config.admin);

    auto take = [&impl] {
        AnalysisResults out = std::move(impl.results);
        impl.results = {};
        impl.derived.clear();
        impl.all_metadata.clear();
        impl.run_span.reset();
        impl.pool.reset();
        return out;
    };

    // -- §5: outages --------------------------------------------------------
    if (impl.kroot_records == 0 && impl.uptime_records == 0) return take();

    std::vector<RebootInference> all_reboots;
    for (const auto& d : impl.derived)
        all_reboots.insert(all_reboots.end(), d.reboots.begin(),
                           d.reboots.end());
    metrics.reboots_detected.inc(all_reboots.size());

    results.firmware =
        detect_firmware_spikes(all_reboots, results.window, config.outage);
    const auto filtered_reboots = filter_firmware_reboots(
        all_reboots, results.firmware.release_days, config.outage);
    std::map<atlas::ProbeId, std::vector<RebootInference>> reboots_by_probe;
    for (const auto& reboot : filtered_reboots)
        reboots_by_probe[reboot.probe].push_back(reboot);

    std::vector<ProbeCondProb> tallies;
    {
        obs::ObsSpan span("pipeline.outages", "pipeline",
                          &metrics.outage_latency);
        for (auto& d : impl.derived) {
            if (!d.analyzable || !d.has_kroot) continue;
            std::vector<DetectedOutage> power;
            std::vector<OutageOutcome> power_outcomes;
            if (d.version && *d.version == atlas::ProbeVersion::V3) {
                if (auto it = reboots_by_probe.find(d.probe);
                    it != reboots_by_probe.end()) {
                    // Surviving reboots are (probe, at)-sorted; candidates
                    // too. Replay the kept subset against the
                    // finalize-time per-reboot candidates.
                    std::size_t ci = 0;
                    for (const auto& reboot : it->second) {
                        while (ci < d.candidates.size() &&
                               d.candidates[ci].at < reboot.at)
                            ++ci;
                        if (ci >= d.candidates.size() ||
                            d.candidates[ci].at != reboot.at)
                            throw Error(
                                "StreamingPipeline: surviving reboot without "
                                "a power candidate (internal invariant)");
                        const PowerCandidate& candidate = d.candidates[ci++];
                        if (candidate.has_outage && !candidate.suppressed) {
                            power.push_back(candidate.outage);
                            power_outcomes.push_back(candidate.outcome);
                        }
                    }
                }
            }
            tallies.push_back(
                tally_probe(d.probe, d.network_outcomes, power_outcomes));
            results.network_outages.emplace(d.probe, std::move(d.network));
            results.power_outages.emplace(d.probe, std::move(power));
            results.network_outcomes.emplace(d.probe,
                                             std::move(d.network_outcomes));
            results.power_outcomes.emplace(d.probe,
                                           std::move(power_outcomes));
        }
    }
    metrics.outage_probes.inc(tallies.size());
    results.cond_prob = analyze_cond_prob(tallies, results.mapping,
                                          *impl.registry, config.cond_prob);
    return take();
}

std::size_t StreamingPipeline::probes_seen() const {
    return impl_->probes_total;
}

std::size_t StreamingPipeline::buffered_records() const {
    return impl_->buffered;
}

std::size_t StreamingPipeline::peak_buffered_records() const {
    return impl_->peak_buffered;
}

namespace {

class PipelineFeedHandler final : public atlas::BundleStreamHandler {
public:
    explicit PipelineFeedHandler(StreamingPipeline& pipeline)
        : pipeline_(pipeline) {}
    void on_metadata(const atlas::ProbeMetadata& meta) override {
        pipeline_.feed_metadata(meta);
    }
    void on_connection(const atlas::ConnectionLogEntry& entry) override {
        pipeline_.feed_connection(entry);
    }
    void on_kroot(const atlas::KRootPingRecord& record) override {
        pipeline_.feed_kroot(record);
    }
    void on_uptime(const atlas::UptimeRecord& record) override {
        pipeline_.feed_uptime(record);
    }
    void on_probe_complete(atlas::ProbeId probe) override {
        pipeline_.seal_through(probe);
    }

private:
    StreamingPipeline& pipeline_;
};

}  // namespace

void feed_binary_bundle(StreamingPipeline& pipeline,
                        const std::string& directory, bool lenient) {
    PipelineFeedHandler handler(pipeline);
    atlas::stream_binary_bundle(directory, handler, lenient);
}

}  // namespace dynaddr::core

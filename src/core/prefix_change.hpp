#pragma once

#include <span>
#include <string>
#include <vector>

#include "bgp/as_registry.hpp"
#include "bgp/prefix_table.hpp"
#include "core/address_change.hpp"
#include "core/as_mapping.hpp"

namespace dynaddr::core {

/// One row of the paper's Table 7: of an AS's address changes, how many
/// crossed the routed BGP prefix, the enclosing /16, and the enclosing /8.
struct Table7Row {
    std::uint32_t asn = 0;  ///< 0 for the "All" row
    std::string as_name;
    std::string country;
    int total_changes = 0;
    int diff_bgp = 0;
    int diff_16 = 0;
    int diff_8 = 0;

    [[nodiscard]] double pct_bgp() const {
        return total_changes == 0 ? 0.0 : 100.0 * diff_bgp / total_changes;
    }
    [[nodiscard]] double pct_16() const {
        return total_changes == 0 ? 0.0 : 100.0 * diff_16 / total_changes;
    }
    [[nodiscard]] double pct_8() const {
        return total_changes == 0 ? 0.0 : 100.0 * diff_8 / total_changes;
    }
};

/// Prefix-change analysis output.
struct PrefixChangeAnalysis {
    Table7Row all;
    std::vector<Table7Row> as_rows;  ///< per single-AS group, descending N
};

/// Classifies every within-AS address change of single-AS probes by
/// whether it crossed the routed prefix / enclosing /16 / enclosing /8.
/// The routed prefix of each side is resolved at that side's month, as
/// the paper does with the monthly pfx2as snapshots. Changes where either
/// side has no routed prefix are counted only in the /16 and /8 columns.
PrefixChangeAnalysis analyze_prefix_changes(
    std::span<const ProbeChanges> probes, const AsMapping& mapping,
    const bgp::PrefixTable& table, const bgp::AsRegistry& registry,
    int min_rows_changes = 1);

}  // namespace dynaddr::core

#include "core/ipv6_privacy.hpp"

#include <algorithm>
#include <map>

namespace dynaddr::core {

Ipv6PrivacyAnalysis analyze_ipv6_privacy(std::span<const ProbeLog> logs,
                                         const Ipv6PrivacyConfig& config) {
    Ipv6PrivacyAnalysis analysis;
    for (const auto& log : logs) {
        struct Sighting {
            net::TimePoint first;
            net::TimePoint last;
        };
        std::map<net::IPv6Address, Sighting> sightings;
        for (const auto& entry : log.entries) {
            if (entry.address.is_v4()) continue;
            auto [it, inserted] =
                sightings.try_emplace(entry.address.v6,
                                      Sighting{entry.start, entry.end});
            if (!inserted) {
                it->second.first = std::min(it->second.first, entry.start);
                it->second.last = std::max(it->second.last, entry.end);
            }
        }
        if (sightings.empty()) continue;

        Ipv6ProbeView view;
        view.probe = log.probe;
        view.addresses = int(sightings.size());
        // Group by /64 and collect first-sighting times for the rotation
        // estimate.
        std::map<net::IPv6Address, std::vector<net::TimePoint>> by_prefix;
        for (const auto& [address, sighting] : sightings) {
            if (sighting.last - sighting.first <= config.ephemeral_lifetime)
                ++view.ephemeral;
            by_prefix[address.prefix64()].push_back(sighting.first);
        }
        std::size_t busiest = 0;
        std::vector<net::TimePoint>* busiest_firsts = nullptr;
        for (auto& [prefix, firsts] : by_prefix) {
            if (firsts.size() >= std::size_t(config.min_iids_for_rotation))
                view.rotating = true;
            if (firsts.size() > busiest) {
                busiest = firsts.size();
                busiest_firsts = &firsts;
            }
        }
        if (busiest_firsts != nullptr && busiest_firsts->size() >= 2) {
            std::sort(busiest_firsts->begin(), busiest_firsts->end());
            std::vector<double> gaps;
            for (std::size_t i = 1; i < busiest_firsts->size(); ++i)
                gaps.push_back(
                    ((*busiest_firsts)[i] - (*busiest_firsts)[i - 1]).to_hours());
            std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2,
                             gaps.end());
            view.rotation_hours = gaps[gaps.size() / 2];
            analysis.rotation_cdf.add(view.rotation_hours);
        }

        analysis.total_addresses += view.addresses;
        analysis.ephemeral_addresses += view.ephemeral;
        if (view.rotating) ++analysis.rotating_probes;
        analysis.probes.push_back(std::move(view));
    }
    return analysis;
}

}  // namespace dynaddr::core

#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "dhcp/messages.hpp"
#include "pool/address_pool.hpp"
#include "pool/lease_db.hpp"
#include "sim/simulation.hpp"

namespace dynaddr::dhcp {

/// DHCP server behaviour knobs.
struct ServerConfig {
    net::Duration lease_duration = net::Duration::hours(4);
    /// When set, the server NAKs renewals once the client has held the
    /// same address this long — an administrative session cap some ISPs
    /// impose even over DHCP. Unset = renew forever (the RFC's intent).
    std::optional<net::Duration> max_address_age;
    /// Relative jitter on the age cap, in [0, 1). Each (client, tenure)
    /// gets a deterministic threshold in max_age·[1-j, 1+j], so
    /// administrative renumbering spreads over weeks instead of forming a
    /// sharp periodic mode — the North American pattern in the paper's
    /// Figure 1.
    double max_age_jitter = 0.0;
    /// Expiry sweeps are quantized to this granularity: a pending sweep is
    /// only rescheduled when a new lease's (rounded-up) expiry precedes
    /// it, so a burst of grants costs one timer event instead of one
    /// cancel+reschedule per grant. All simulation times are whole
    /// seconds, so the 1 s default batches without delaying any expiry.
    net::Duration expiry_sweep_quantum = net::Duration::seconds(1);
};

/// A single-subnet DHCP server backed by an AddressPool.
///
/// Address preservation follows RFC 2131 §4.3.1: the server prefers (1)
/// the client's existing lease, (2) its remembered previous binding, (3)
/// the address in the client's request, in that order — all delegated to
/// the pool's Sticky strategy. Expired leases return their address to the
/// pool, where background churn may hand it to another subscriber.
class Server {
public:
    /// The pool must outlive the server. `sim` drives lease-expiry sweeps.
    Server(ServerConfig config, pool::AddressPool& pool, sim::Simulation& sim);

    /// DISCOVER -> OFFER. Returns nullopt when the pool is exhausted.
    std::optional<Offer> handle_discover(pool::ClientId client);

    /// REQUEST in SELECTING or INIT-REBOOT state: the client asks for a
    /// specific address. ACKs when the address is (still) assignable to
    /// this client, otherwise NAKs.
    RequestResult handle_request(pool::ClientId client, net::IPv4Address requested);

    /// REQUEST in RENEWING/REBINDING state: extend the current lease.
    /// NAKs when the client holds no lease on `addr` or the administrative
    /// age cap is reached.
    RequestResult handle_renew(pool::ClientId client, net::IPv4Address addr);

    /// RELEASE: client gives the address back voluntarily.
    void handle_release(pool::ClientId client);

    /// Whether the server process is up. Exchanges with an offline server
    /// throw — callers (the client, which models the network) must check
    /// first and treat downtime as silence. Always true without fault
    /// injection.
    [[nodiscard]] bool online() const { return online_; }

    /// Fault injection: the server process dies. With `amnesia` the
    /// in-memory lease table is lost — addresses return to the pool (whose
    /// remembered bindings survive, so sticky reallocation tends to re-offer
    /// the same address), and clients renew into a server that has never
    /// heard of them.
    void crash(bool amnesia);

    /// Fault injection: the server comes back and resumes expiry sweeps.
    void restart();

    /// Active lease count.
    [[nodiscard]] std::size_t active_leases() const { return leases_.size(); }

    /// Every active lease (chaos-test invariant checks).
    [[nodiscard]] std::vector<pool::Lease> leases() const { return leases_.all(); }

    /// The lease a client currently holds, if any.
    [[nodiscard]] std::optional<pool::Lease> lease_of(pool::ClientId client) const;

    [[nodiscard]] const ServerConfig& config() const { return config_; }

private:
    RequestResult grant(pool::ClientId client, net::IPv4Address addr);
    /// NAKs the client's lease and forgets its binding (administrative).
    RequestResult evict(pool::ClientId client);
    void expire_leases();
    void schedule_expiry_sweep();
    /// The (deterministically jittered) age cap for one tenure.
    [[nodiscard]] net::Duration jittered_max_age(pool::ClientId client,
                                                 net::TimePoint hold_started) const;

    ServerConfig config_;
    pool::AddressPool* pool_;
    sim::Simulation* sim_;
    pool::LeaseDb leases_;
    /// When each client's current continuous hold of an address began;
    /// used for the administrative age cap.
    std::unordered_map<pool::ClientId, net::TimePoint> hold_started_;
    /// When a client's lease last expired/released, for the churn model.
    std::unordered_map<pool::ClientId, net::TimePoint> absent_since_;
    std::optional<sim::EventId> sweep_event_;
    /// Fire time of the pending sweep event (valid while sweep_event_ is
    /// set); the batching comparison point.
    net::TimePoint sweep_at_;
    bool online_ = true;
};

}  // namespace dynaddr::dhcp

#include "dhcp/wire.hpp"

#include "netcore/error.hpp"

namespace dynaddr::dhcp {

namespace {

constexpr std::size_t kFixedHeader = 236;  // through the `file` field
constexpr std::size_t kMinPacket = 300;    // BOOTP minimum
constexpr std::array<std::uint8_t, 4> kMagicCookie = {99, 130, 83, 99};

enum : std::uint8_t {
    kOptPad = 0,
    kOptRequestedAddress = 50,
    kOptLeaseTime = 51,
    kOptMessageType = 53,
    kOptServerId = 54,
    kOptClientId = 61,
    kOptEnd = 255,
};

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
    out.push_back(std::uint8_t(value >> 8));
    out.push_back(std::uint8_t(value));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
    out.push_back(std::uint8_t(value >> 24));
    out.push_back(std::uint8_t(value >> 16));
    out.push_back(std::uint8_t(value >> 8));
    out.push_back(std::uint8_t(value));
}

void put_option_u32(std::vector<std::uint8_t>& out, std::uint8_t code,
                    std::uint32_t value) {
    out.push_back(code);
    out.push_back(4);
    put_u32(out, value);
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t at) {
    return std::uint32_t(bytes[at]) << 24 | std::uint32_t(bytes[at + 1]) << 16 |
           std::uint32_t(bytes[at + 2]) << 8 | std::uint32_t(bytes[at + 3]);
}

}  // namespace

std::uint8_t message_type_code(MessageType type) {
    switch (type) {
        case MessageType::Discover: return 1;
        case MessageType::Offer: return 2;
        case MessageType::Request: return 3;
        case MessageType::Ack: return 5;
        case MessageType::Nak: return 6;
        case MessageType::Release: return 7;
    }
    return 0;
}

std::optional<MessageType> message_type_from_code(std::uint8_t code) {
    switch (code) {
        case 1: return MessageType::Discover;
        case 2: return MessageType::Offer;
        case 3: return MessageType::Request;
        case 5: return MessageType::Ack;
        case 6: return MessageType::Nak;
        case 7: return MessageType::Release;
        default: return std::nullopt;  // DECLINE/INFORM unsupported
    }
}

std::vector<std::uint8_t> encode(const WireMessage& message) {
    std::vector<std::uint8_t> out;
    out.reserve(kMinPacket);
    out.push_back(message.op);
    out.push_back(message.htype);
    out.push_back(message.hlen);
    out.push_back(message.hops);
    put_u32(out, message.xid);
    put_u16(out, message.secs);
    put_u16(out, message.flags);
    put_u32(out, message.ciaddr.value());
    put_u32(out, message.yiaddr.value());
    put_u32(out, message.siaddr.value());
    put_u32(out, message.giaddr.value());
    out.insert(out.end(), message.chaddr.begin(), message.chaddr.end());
    out.resize(kFixedHeader, 0);  // sname (64) + file (128) zeroed
    out.insert(out.end(), kMagicCookie.begin(), kMagicCookie.end());

    out.push_back(kOptMessageType);
    out.push_back(1);
    out.push_back(message_type_code(message.type));
    if (message.requested_address)
        put_option_u32(out, kOptRequestedAddress,
                       message.requested_address->value());
    if (message.lease_seconds)
        put_option_u32(out, kOptLeaseTime, *message.lease_seconds);
    if (message.server_id)
        put_option_u32(out, kOptServerId, message.server_id->value());
    if (!message.client_id.empty()) {
        if (message.client_id.size() > 255)
            throw Error("client id too long for a DHCP option");
        out.push_back(kOptClientId);
        out.push_back(std::uint8_t(message.client_id.size()));
        out.insert(out.end(), message.client_id.begin(), message.client_id.end());
    }
    out.push_back(kOptEnd);
    if (out.size() < kMinPacket) out.resize(kMinPacket, 0);
    return out;
}

WireMessage decode(std::span<const std::uint8_t> bytes) {
    if (bytes.size() < kFixedHeader + kMagicCookie.size())
        throw ParseError("DHCP packet too short");
    WireMessage message;
    message.op = bytes[0];
    if (message.op != 1 && message.op != 2)
        throw ParseError("bad BOOTP op " + std::to_string(message.op));
    message.htype = bytes[1];
    message.hlen = bytes[2];
    message.hops = bytes[3];
    message.xid = get_u32(bytes, 4);
    message.secs = std::uint16_t(bytes[8] << 8 | bytes[9]);
    message.flags = std::uint16_t(bytes[10] << 8 | bytes[11]);
    message.ciaddr = net::IPv4Address{get_u32(bytes, 12)};
    message.yiaddr = net::IPv4Address{get_u32(bytes, 16)};
    message.siaddr = net::IPv4Address{get_u32(bytes, 20)};
    message.giaddr = net::IPv4Address{get_u32(bytes, 24)};
    for (std::size_t i = 0; i < 16; ++i) message.chaddr[i] = bytes[28 + i];

    for (std::size_t i = 0; i < kMagicCookie.size(); ++i)
        if (bytes[kFixedHeader + i] != kMagicCookie[i])
            throw ParseError("bad DHCP magic cookie");

    bool saw_type = false;
    std::size_t at = kFixedHeader + kMagicCookie.size();
    while (at < bytes.size()) {
        const std::uint8_t code = bytes[at++];
        if (code == kOptPad) continue;
        if (code == kOptEnd) break;
        if (at >= bytes.size()) throw ParseError("option length missing");
        const std::size_t length = bytes[at++];
        if (at + length > bytes.size()) throw ParseError("option overruns packet");
        const auto payload = bytes.subspan(at, length);
        switch (code) {
            case kOptMessageType: {
                if (length != 1) throw ParseError("bad message-type length");
                auto type = message_type_from_code(payload[0]);
                if (!type) throw ParseError("unknown DHCP message type");
                message.type = *type;
                saw_type = true;
                break;
            }
            case kOptRequestedAddress:
                if (length != 4) throw ParseError("bad requested-address length");
                message.requested_address = net::IPv4Address{get_u32(bytes, at)};
                break;
            case kOptLeaseTime:
                if (length != 4) throw ParseError("bad lease-time length");
                message.lease_seconds = get_u32(bytes, at);
                break;
            case kOptServerId:
                if (length != 4) throw ParseError("bad server-id length");
                message.server_id = net::IPv4Address{get_u32(bytes, at)};
                break;
            case kOptClientId:
                message.client_id.assign(payload.begin(), payload.end());
                break;
            default:
                break;  // unknown option: skip
        }
        at += length;
    }
    if (!saw_type) throw ParseError("DHCP packet without message type");
    return message;
}

}  // namespace dynaddr::dhcp

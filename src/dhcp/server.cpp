#include "dhcp/server.hpp"

#include <algorithm>

#include "netcore/error.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/rng.hpp"
#include "sim/cause_ledger.hpp"

DYNADDR_LOG_MODULE(dhcp);

namespace dynaddr::dhcp {

namespace {

/// DHCP message counters across every simulated server.
struct DhcpMetrics {
    obs::Counter& discover = obs::counter("dhcp.discover");
    obs::Counter& offer = obs::counter("dhcp.offer");
    obs::Counter& request = obs::counter("dhcp.request");
    obs::Counter& renew = obs::counter("dhcp.renew");
    obs::Counter& ack = obs::counter("dhcp.ack");
    obs::Counter& nak = obs::counter("dhcp.nak");
    obs::Counter& released = obs::counter("dhcp.released");
    obs::Counter& evicted = obs::counter("dhcp.evicted");
    obs::Counter& expired = obs::counter("dhcp.expired");
};

DhcpMetrics& dhcp_metrics() {
    static DhcpMetrics metrics;
    return metrics;
}

}  // namespace

Server::Server(ServerConfig config, pool::AddressPool& pool, sim::Simulation& sim)
    : config_(config), pool_(&pool), sim_(&sim) {}

net::Duration Server::jittered_max_age(pool::ClientId client,
                                       net::TimePoint hold_started) const {
    const net::Duration max_age = *config_.max_address_age;
    if (config_.max_age_jitter <= 0.0) return max_age;
    // Deterministic per-tenure factor in [1-j, 1+j].
    std::uint64_t state = (std::uint64_t(client) << 32) ^
                          std::uint64_t(hold_started.unix_seconds());
    const double unit = double(rng::splitmix64(state) >> 11) * 0x1.0p-53;
    const double factor = 1.0 + config_.max_age_jitter * (2.0 * unit - 1.0);
    return net::Duration{std::int64_t(double(max_age.count()) * factor)};
}

void Server::crash(bool amnesia) {
    if (!online_) return;
    online_ = false;
    // No process, no expiry sweeps.
    if (sweep_event_) {
        sim_->cancel(*sweep_event_);
        sweep_event_.reset();
    }
    if (amnesia) {
        const net::TimePoint now = sim_->now();
        for (const auto& lease : leases_.all()) {
            sim::cause_note(lease.client, sim::CauseKind::ServerAmnesia,
                            sim::CauseSite::DhcpAmnesiaCrash, now);
            leases_.revoke(lease.client);
            pool_->release(lease.client);
            hold_started_.erase(lease.client);
            absent_since_[lease.client] = now;
        }
        DYNADDR_LOG(Warn, dhcp, "server crashed with lease-state amnesia");
    } else {
        DYNADDR_LOG(Warn, dhcp, "server crashed (leases intact)");
    }
}

void Server::restart() {
    if (online_) return;
    online_ = true;
    expire_leases();
    schedule_expiry_sweep();
    DYNADDR_LOG(Info, dhcp, "server restarted");
}

std::optional<Offer> Server::handle_discover(pool::ClientId client) {
    if (!online_) throw Error("DHCP exchange with offline server");
    dhcp_metrics().discover.inc();
    expire_leases();
    // If the client already holds a lease (it may have rebooted and
    // forgotten), offer the same address per §4.3.1 — unless the block
    // was administratively retired.
    if (auto lease = leases_.find(client)) {
        if (!pool_->is_retired(lease->address)) {
            dhcp_metrics().offer.inc();
            return Offer{lease->address, config_.lease_duration};
        }
        sim::cause_note(client, sim::CauseKind::AdminRenumbering,
                        sim::CauseSite::DhcpRetiredPrefix, sim_->now());
        evict(client);
    }
    std::optional<net::TimePoint> absent;
    if (auto it = absent_since_.find(client); it != absent_since_.end())
        absent = it->second;
    auto addr = pool_->allocate(client, sim_->now(), std::nullopt, absent);
    if (!addr) {
        DYNADDR_LOG(Warn, dhcp, "no address to offer client ", client);
        return std::nullopt;
    }
    dhcp_metrics().offer.inc();
    DYNADDR_LOG(Debug, dhcp, "offer ", addr->to_string(), " to client ",
                client);
    // The OFFER reserves the address; a client that never REQUESTs keeps it
    // reserved until the lease would expire — we simplify by granting at
    // REQUEST time and releasing the reservation if the REQUEST never
    // comes. The pool already holds it for this client either way.
    return Offer{*addr, config_.lease_duration};
}

RequestResult Server::handle_request(pool::ClientId client,
                                     net::IPv4Address requested) {
    if (!online_) throw Error("DHCP exchange with offline server");
    dhcp_metrics().request.inc();
    expire_leases();
    if (pool_->is_retired(requested)) {
        // Administrative renumbering: never re-grant a retired block.
        if (auto held = pool_->address_of(client); held && *held == requested) {
            sim::cause_note(client, sim::CauseKind::AdminRenumbering,
                            sim::CauseSite::DhcpRetiredPrefix, sim_->now());
            evict(client);
        }
        return RequestResult{};
    }
    // Existing lease on the same address: treat as re-request, refresh.
    if (auto lease = leases_.find(client); lease && lease->address == requested)
        return grant(client, requested);
    // Address currently allocated to this client in the pool (fresh OFFER
    // or INIT-REBOOT inside the lease window).
    if (auto held = pool_->address_of(client); held && *held == requested)
        return grant(client, requested);
    // INIT-REBOOT for an address the pool can still give this client.
    std::optional<net::TimePoint> absent;
    if (auto it = absent_since_.find(client); it != absent_since_.end())
        absent = it->second;
    auto addr = pool_->allocate(client, sim_->now(), requested, absent);
    if (addr && *addr == requested) return grant(client, requested);
    // Couldn't honour the request; a real server NAKs and the client
    // restarts from INIT. If we allocated some other address, return it to
    // the pool so INIT sees a clean slate.
    if (addr) {
        pool_->release(client);
        absent_since_[client] = sim_->now();
    }
    dhcp_metrics().nak.inc();
    DYNADDR_LOG(Debug, dhcp, "nak client ", client, " requesting ",
                requested.to_string());
    return RequestResult{};
}

RequestResult Server::handle_renew(pool::ClientId client, net::IPv4Address addr) {
    if (!online_) throw Error("DHCP exchange with offline server");
    dhcp_metrics().renew.inc();
    expire_leases();
    auto lease = leases_.find(client);
    if (!lease || lease->address != addr) return RequestResult{};
    // Administrative renumbering: the whole block was retired; evict.
    if (pool_->is_retired(addr)) {
        sim::cause_note(client, sim::CauseKind::AdminRenumbering,
                        sim::CauseSite::DhcpRetiredPrefix, sim_->now());
        return evict(client);
    }
    if (config_.max_address_age) {
        const auto started_it = hold_started_.find(client);
        if (started_it != hold_started_.end() &&
            sim_->now() + config_.lease_duration - started_it->second >
                jittered_max_age(client, started_it->second)) {
            // Administrative age cap: refuse to extend past it.
            sim::cause_note(client, sim::CauseKind::MaxAgeEviction,
                            sim::CauseSite::DhcpMaxAge, sim_->now());
            return evict(client);
        }
    }
    return grant(client, addr);
}

RequestResult Server::evict(pool::ClientId client) {
    // NAK: the client restarts from INIT and the binding is forgotten so
    // it draws a fresh address.
    dhcp_metrics().evicted.inc();
    DYNADDR_LOG(Debug, dhcp, "evict client ", client);
    leases_.revoke(client);
    pool_->release(client);
    pool_->forget_binding(client);
    hold_started_.erase(client);
    absent_since_[client] = sim_->now();
    return RequestResult{};
}

void Server::handle_release(pool::ClientId client) {
    if (!online_) throw Error("DHCP exchange with offline server");
    dhcp_metrics().released.inc();
    expire_leases();
    if (leases_.revoke(client)) {
        pool_->release(client);
        hold_started_.erase(client);
        absent_since_[client] = sim_->now();
    }
}

std::optional<pool::Lease> Server::lease_of(pool::ClientId client) const {
    return leases_.find(client);
}

RequestResult Server::grant(pool::ClientId client, net::IPv4Address addr) {
    const net::TimePoint now = sim_->now();
    pool::Lease lease{client, addr, now, now + config_.lease_duration};
    leases_.grant(lease);
    hold_started_.try_emplace(client, now);
    absent_since_.erase(client);
    schedule_expiry_sweep();
    dhcp_metrics().ack.inc();
    return RequestResult{true, addr, lease.granted, lease.expiry};
}

void Server::expire_leases() {
    for (const auto& lease : leases_.expire_until(sim_->now())) {
        dhcp_metrics().expired.inc();
        pool_->release(lease.client);
        hold_started_.erase(lease.client);
        absent_since_[lease.client] = lease.expiry;
    }
}

void Server::schedule_expiry_sweep() {
    // One pending sweep at (or quantum-rounded just after) the earliest
    // expiry keeps pool state current even when no client interaction
    // happens for a long time. The sweep is batched: grants only touch
    // the timer when their expiry precedes the pending sweep, instead of
    // cancelling and rescheduling one event per lease.
    auto next = leases_.next_expiry();
    if (!next) return;
    const std::int64_t quantum = std::max<std::int64_t>(
        1, config_.expiry_sweep_quantum.count());
    const net::TimePoint target{
        (next->unix_seconds() + quantum - 1) / quantum * quantum};
    if (sweep_event_) {
        if (sweep_at_ <= target) return;  // pending sweep is early enough
        sim_->cancel(*sweep_event_);
    }
    sweep_at_ = target;
    sweep_event_ = sim_->at(target, [this](net::TimePoint) {
        sweep_event_.reset();
        expire_leases();
        schedule_expiry_sweep();
    });
}

}  // namespace dynaddr::dhcp

#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dhcp/messages.hpp"
#include "netcore/ipv4.hpp"

namespace dynaddr::dhcp {

/// An RFC 2131 DHCP packet: the fixed BOOTP header plus the option
/// subset this library speaks (message type, requested address, lease
/// time, server identifier, client identifier). The simulator exchanges
/// messages as direct calls, but the wire codec makes the library usable
/// against real packet captures and sockets.
struct WireMessage {
    std::uint8_t op = 1;     ///< 1 = BOOTREQUEST, 2 = BOOTREPLY
    std::uint8_t htype = 1;  ///< Ethernet
    std::uint8_t hlen = 6;
    std::uint8_t hops = 0;
    std::uint32_t xid = 0;
    std::uint16_t secs = 0;
    std::uint16_t flags = 0;
    net::IPv4Address ciaddr;  ///< client's current address (RENEW)
    net::IPv4Address yiaddr;  ///< "your" address (OFFER/ACK)
    net::IPv4Address siaddr;
    net::IPv4Address giaddr;
    std::array<std::uint8_t, 16> chaddr{};  ///< client hardware address

    MessageType type = MessageType::Discover;          ///< option 53
    std::optional<net::IPv4Address> requested_address; ///< option 50
    std::optional<std::uint32_t> lease_seconds;        ///< option 51
    std::optional<net::IPv4Address> server_id;         ///< option 54
    std::vector<std::uint8_t> client_id;               ///< option 61 (may be empty)

    friend bool operator==(const WireMessage&, const WireMessage&) = default;
};

/// Serializes to wire bytes: fixed header, magic cookie, options,
/// END, zero-padded to the 300-byte BOOTP minimum.
std::vector<std::uint8_t> encode(const WireMessage& message);

/// Parses wire bytes. Throws ParseError on a short packet, a bad magic
/// cookie, a missing/invalid message-type option, or an option that runs
/// past the end. Unknown options are skipped.
WireMessage decode(std::span<const std::uint8_t> bytes);

/// The numeric value of option 53 for a message type, and back.
[[nodiscard]] std::uint8_t message_type_code(MessageType type);
[[nodiscard]] std::optional<MessageType> message_type_from_code(std::uint8_t code);

}  // namespace dynaddr::dhcp

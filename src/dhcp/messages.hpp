#pragma once

#include <optional>

#include "netcore/ipv4.hpp"
#include "netcore/time.hpp"
#include "pool/address_pool.hpp"

namespace dynaddr::dhcp {

/// DHCP message kinds we model (RFC 2131 §3). BOOTP framing, relays and
/// broadcast are out of scope: the simulator connects client and server
/// directly, but the protocol state machine follows the RFC.
enum class MessageType {
    Discover,
    Offer,
    Request,
    Ack,
    Nak,
    Release,
};

/// Server's answer to a DISCOVER.
struct Offer {
    net::IPv4Address address;
    net::Duration lease_duration;
};

/// Server's answer to a REQUEST (initial, INIT-REBOOT, RENEWING or
/// REBINDING). `ack == false` is a DHCPNAK: the client must restart from
/// INIT.
struct RequestResult {
    bool ack = false;
    net::IPv4Address address;       ///< valid when ack
    net::TimePoint lease_granted;   ///< valid when ack
    net::TimePoint lease_expiry;    ///< valid when ack
};

/// Why a client lost its address; surfaced to the CPE for logging.
enum class LossReason {
    LeaseExpired,   ///< no renewal possible before expiry (outage)
    ServerNak,      ///< server refused renewal (administrative)
    ClientRelease,  ///< client sent RELEASE (shutdown)
    ClientReboot,   ///< client forgot its lease across a reboot
};

}  // namespace dynaddr::dhcp

#pragma once

#include <functional>
#include <optional>

#include "dhcp/messages.hpp"
#include "dhcp/server.hpp"
#include "sim/simulation.hpp"

namespace dynaddr::dhcp {

/// DHCP client states (RFC 2131 §4.4 figure 5, minus the SELECTING
/// transient — transport is a direct call, so an OFFER arrives "instantly"
/// with the DISCOVER's reply). REQUESTING is real: the fault layer can
/// swallow a REQUEST's ACK, and the client must retransmit with backoff
/// rather than stall (RFC 2131 §3.1.5).
enum class ClientState {
    Off,         ///< powered down or not started
    Init,        ///< no address; waiting for link or retrying acquisition
    Requesting,  ///< REQUEST sent, no reply yet; retransmit timer pending
    Bound,       ///< address held, renewal timer pending at T1
    Renewing,    ///< unicast renew attempts, T1..T2
    Rebinding,   ///< broadcast renew attempts, T2..expiry
};

/// Client configuration.
struct ClientConfig {
    /// Fraction of the lease at which renewal starts (RFC default 0.5).
    double t1_fraction = 0.5;
    /// Fraction of the lease at which rebinding starts (RFC default 0.875).
    double t2_fraction = 0.875;
    /// Minimum seconds between retransmitted renew attempts (RFC: 60).
    net::Duration min_retry = net::Duration::seconds(60);
    /// Retry interval for failed initial acquisition while the link is up.
    net::Duration init_retry = net::Duration::seconds(300);
    /// First retransmission delay after an unanswered DISCOVER/REQUEST
    /// (RFC 2131 §4.1: 4 s), doubling up to `retransmit_max`. Only fault
    /// injection can leave an exchange unanswered, so these timers are
    /// inert in fault-free runs.
    net::Duration retransmit_base = net::Duration::seconds(4);
    /// Retransmission backoff cap (RFC 2131 §4.1: 64 s).
    net::Duration retransmit_max = net::Duration::seconds(64);
    /// Unanswered REQUEST retransmissions before the client abandons the
    /// transaction and re-enters INIT with a fresh DISCOVER.
    int request_retries = 4;
    /// Whether the lease survives a CPE power-cycle (NVRAM) and the client
    /// re-requests it via INIT-REBOOT. When false a reboot forgets the
    /// address — the client behaves like the PPP devices the paper
    /// describes as renumbering on any reboot.
    bool remember_lease_across_reboot = true;
};

/// A DHCP client driving one WAN interface of a CPE.
///
/// The owning CPE wires in `reachable` (is the access network currently
/// passing traffic?) and receives `on_acquired` / `on_lost` callbacks.
/// All timers run on the shared Simulation.
class Client {
public:
    using AcquiredCallback = std::function<void(net::IPv4Address)>;
    using LostCallback = std::function<void(LossReason)>;

    Client(ClientConfig config, pool::ClientId id, Server& server,
           sim::Simulation& sim, std::function<bool()> reachable);

    /// Powers the client on. Re-requests a remembered lease (INIT-REBOOT)
    /// when configured to, otherwise starts from INIT.
    void power_on();

    /// Powers the client off. `graceful` sends DHCPRELEASE (an orderly
    /// shutdown); a power cut does not.
    void power_off(bool graceful);

    /// The access link came back; a dormant client retries immediately.
    void link_restored();

    /// The access link went down. Timers keep running — the client will
    /// discover unreachability when a renew attempt fails, exactly like a
    /// real client.
    void link_lost();

    [[nodiscard]] ClientState state() const { return state_; }
    [[nodiscard]] std::optional<net::IPv4Address> address() const { return address_; }

    void set_on_acquired(AcquiredCallback cb) { on_acquired_ = std::move(cb); }
    void set_on_lost(LostCallback cb) { on_lost_ = std::move(cb); }

private:
    void enter_init();
    void try_acquire();
    void become_bound(const RequestResult& result);
    void lose_address(LossReason reason);
    void attempt_renew();
    void backoff_renew();
    void begin_requesting(net::IPv4Address addr);
    void resend_request();
    void abandon_request();
    [[nodiscard]] net::Duration next_backoff();
    void schedule_timer(net::TimePoint when);
    void cancel_timer();
    void on_timer();

    ClientConfig config_;
    pool::ClientId id_;
    Server* server_;
    sim::Simulation* sim_;
    std::function<bool()> reachable_;
    AcquiredCallback on_acquired_;
    LostCallback on_lost_;

    ClientState state_ = ClientState::Off;
    std::optional<net::IPv4Address> address_;
    std::optional<net::IPv4Address> remembered_;
    net::TimePoint lease_granted_{};
    net::TimePoint lease_expiry_{};
    net::TimePoint t1_{};
    net::TimePoint t2_{};
    std::optional<sim::EventId> timer_;
    /// Address of the in-flight REQUEST while in Requesting.
    std::optional<net::IPv4Address> pending_request_;
    /// Current retransmission interval; zero = next silence starts at
    /// retransmit_base. Reset on binding and power transitions.
    net::Duration backoff_{0};
    int request_attempts_ = 0;
};

}  // namespace dynaddr::dhcp

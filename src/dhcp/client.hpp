#pragma once

#include <functional>
#include <optional>

#include "dhcp/messages.hpp"
#include "dhcp/server.hpp"
#include "sim/simulation.hpp"

namespace dynaddr::dhcp {

/// DHCP client states (RFC 2131 §4.4 figure 5, minus SELECTING /
/// REQUESTING transients — transport is a reliable direct call, so OFFER
/// and ACK arrive "instantly" and those states collapse).
enum class ClientState {
    Off,        ///< powered down or not started
    Init,       ///< no address; waiting for link or retrying acquisition
    Bound,      ///< address held, renewal timer pending at T1
    Renewing,   ///< unicast renew attempts, T1..T2
    Rebinding,  ///< broadcast renew attempts, T2..expiry
};

/// Client configuration.
struct ClientConfig {
    /// Fraction of the lease at which renewal starts (RFC default 0.5).
    double t1_fraction = 0.5;
    /// Fraction of the lease at which rebinding starts (RFC default 0.875).
    double t2_fraction = 0.875;
    /// Minimum seconds between retransmitted renew attempts (RFC: 60).
    net::Duration min_retry = net::Duration::seconds(60);
    /// Retry interval for failed initial acquisition while the link is up.
    net::Duration init_retry = net::Duration::seconds(300);
    /// Whether the lease survives a CPE power-cycle (NVRAM) and the client
    /// re-requests it via INIT-REBOOT. When false a reboot forgets the
    /// address — the client behaves like the PPP devices the paper
    /// describes as renumbering on any reboot.
    bool remember_lease_across_reboot = true;
};

/// A DHCP client driving one WAN interface of a CPE.
///
/// The owning CPE wires in `reachable` (is the access network currently
/// passing traffic?) and receives `on_acquired` / `on_lost` callbacks.
/// All timers run on the shared Simulation.
class Client {
public:
    using AcquiredCallback = std::function<void(net::IPv4Address)>;
    using LostCallback = std::function<void(LossReason)>;

    Client(ClientConfig config, pool::ClientId id, Server& server,
           sim::Simulation& sim, std::function<bool()> reachable);

    /// Powers the client on. Re-requests a remembered lease (INIT-REBOOT)
    /// when configured to, otherwise starts from INIT.
    void power_on();

    /// Powers the client off. `graceful` sends DHCPRELEASE (an orderly
    /// shutdown); a power cut does not.
    void power_off(bool graceful);

    /// The access link came back; a dormant client retries immediately.
    void link_restored();

    /// The access link went down. Timers keep running — the client will
    /// discover unreachability when a renew attempt fails, exactly like a
    /// real client.
    void link_lost();

    [[nodiscard]] ClientState state() const { return state_; }
    [[nodiscard]] std::optional<net::IPv4Address> address() const { return address_; }

    void set_on_acquired(AcquiredCallback cb) { on_acquired_ = std::move(cb); }
    void set_on_lost(LostCallback cb) { on_lost_ = std::move(cb); }

private:
    void enter_init();
    void try_acquire();
    void become_bound(const RequestResult& result);
    void lose_address(LossReason reason);
    void attempt_renew();
    void schedule_timer(net::TimePoint when);
    void cancel_timer();
    void on_timer();

    ClientConfig config_;
    pool::ClientId id_;
    Server* server_;
    sim::Simulation* sim_;
    std::function<bool()> reachable_;
    AcquiredCallback on_acquired_;
    LostCallback on_lost_;

    ClientState state_ = ClientState::Off;
    std::optional<net::IPv4Address> address_;
    std::optional<net::IPv4Address> remembered_;
    net::TimePoint lease_granted_{};
    net::TimePoint lease_expiry_{};
    net::TimePoint t1_{};
    net::TimePoint t2_{};
    std::optional<sim::EventId> timer_;
};

}  // namespace dynaddr::dhcp

#include "dhcp/client.hpp"

#include <algorithm>

#include "netcore/error.hpp"

namespace dynaddr::dhcp {

Client::Client(ClientConfig config, pool::ClientId id, Server& server,
               sim::Simulation& sim, std::function<bool()> reachable)
    : config_(config),
      id_(id),
      server_(&server),
      sim_(&sim),
      reachable_(std::move(reachable)) {
    if (config_.t1_fraction <= 0.0 || config_.t1_fraction >= 1.0 ||
        config_.t2_fraction <= config_.t1_fraction || config_.t2_fraction >= 1.0)
        throw Error("bad DHCP timer fractions");
}

void Client::power_on() {
    if (state_ != ClientState::Off) return;
    state_ = ClientState::Init;
    if (!config_.remember_lease_across_reboot) remembered_.reset();
    try_acquire();
}

void Client::power_off(bool graceful) {
    cancel_timer();
    const bool had_address = address_.has_value();
    if (graceful && had_address && reachable_()) {
        server_->handle_release(id_);
        remembered_.reset();
    } else if (had_address) {
        // Abrupt power cut: the lease lives on server-side; remember it for
        // INIT-REBOOT on restart when configured to.
        remembered_ = address_;
    }
    if (had_address) {
        address_.reset();
        if (on_lost_)
            on_lost_(graceful ? LossReason::ClientRelease : LossReason::ClientReboot);
    }
    state_ = ClientState::Off;
}

void Client::link_restored() {
    if (state_ == ClientState::Init) try_acquire();
    // In Renewing/Rebinding the pending retry timer will succeed now; no
    // action needed. A real client does not get link-state callbacks into
    // its DHCP state machine either.
}

void Client::link_lost() {
    // Nothing: renew attempts will fail and back off per RFC timers.
}

void Client::enter_init() {
    state_ = ClientState::Init;
    address_.reset();
    try_acquire();
}

void Client::try_acquire() {
    if (state_ != ClientState::Init) return;
    cancel_timer();
    if (!reachable_()) return;  // dormant until link_restored()

    // INIT-REBOOT: ask for the remembered address directly.
    if (remembered_) {
        const RequestResult result = server_->handle_request(id_, *remembered_);
        remembered_.reset();
        if (result.ack) {
            become_bound(result);
            return;
        }
        // NAK: fall through to full INIT.
    }

    auto offer = server_->handle_discover(id_);
    if (offer) {
        const RequestResult result = server_->handle_request(id_, offer->address);
        if (result.ack) {
            become_bound(result);
            return;
        }
    }
    // Pool exhausted or raced away; retry later.
    schedule_timer(sim_->now() + config_.init_retry);
}

void Client::become_bound(const RequestResult& result) {
    const bool changed = !address_ || *address_ != result.address;
    address_ = result.address;
    lease_granted_ = result.lease_granted;
    lease_expiry_ = result.lease_expiry;
    const auto lease_len = double((lease_expiry_ - lease_granted_).count());
    t1_ = lease_granted_ +
          net::Duration{std::int64_t(lease_len * config_.t1_fraction)};
    t2_ = lease_granted_ +
          net::Duration{std::int64_t(lease_len * config_.t2_fraction)};
    state_ = ClientState::Bound;
    schedule_timer(t1_);
    if (changed && on_acquired_) on_acquired_(result.address);
}

void Client::lose_address(LossReason reason) {
    const bool had = address_.has_value();
    address_.reset();
    remembered_.reset();
    if (had && on_lost_) on_lost_(reason);
    enter_init();
}

void Client::attempt_renew() {
    if (!address_) return;
    if (reachable_()) {
        const RequestResult result = server_->handle_renew(id_, *address_);
        if (result.ack) {
            become_bound(result);
            return;
        }
        // DHCPNAK: administrative refusal; restart immediately.
        lose_address(LossReason::ServerNak);
        return;
    }
    // Unreachable: back off. RFC 2131 §4.4.5 — wait half the remaining
    // time to T2 (or to expiry when rebinding), floored at min_retry.
    const net::TimePoint now = sim_->now();
    const net::TimePoint deadline =
        state_ == ClientState::Renewing ? t2_ : lease_expiry_;
    net::Duration wait{std::max((deadline - now).count() / 2,
                                config_.min_retry.count())};
    net::TimePoint next = now + wait;
    if (next >= lease_expiry_) next = lease_expiry_;
    else if (state_ == ClientState::Renewing && next > t2_) next = t2_;
    schedule_timer(next);
}

void Client::schedule_timer(net::TimePoint when) {
    cancel_timer();
    timer_ = sim_->at(std::max(when, sim_->now()),
                      [this](net::TimePoint) { on_timer(); });
}

void Client::cancel_timer() {
    if (timer_) {
        sim_->cancel(*timer_);
        timer_.reset();
    }
}

void Client::on_timer() {
    timer_.reset();
    const net::TimePoint now = sim_->now();
    switch (state_) {
        case ClientState::Off:
            break;
        case ClientState::Init:
            try_acquire();
            break;
        case ClientState::Bound:
            state_ = ClientState::Renewing;
            attempt_renew();
            break;
        case ClientState::Renewing:
            if (now >= lease_expiry_) {
                lose_address(LossReason::LeaseExpired);
            } else {
                if (now >= t2_) state_ = ClientState::Rebinding;
                attempt_renew();
            }
            break;
        case ClientState::Rebinding:
            if (now >= lease_expiry_) {
                lose_address(LossReason::LeaseExpired);
            } else {
                attempt_renew();
            }
            break;
    }
}

}  // namespace dynaddr::dhcp

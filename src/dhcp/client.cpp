#include "dhcp/client.hpp"

#include <algorithm>

#include "dhcp/wire.hpp"
#include "netcore/error.hpp"
#include "sim/cause_ledger.hpp"
#include "sim/faults.hpp"

namespace dynaddr::dhcp {

namespace {

using Kind = sim::MessageDecision::Kind;

/// Builds the wire form of the exchange's opening message, mutates it via
/// the installed injector, and reports whether the exchange is lost: a
/// mutation that breaks parsing — or changes what the client asked — means
/// the server ignores (or misanswers) it and the client hears nothing.
/// Runs the real codec both ways, so corruption faults exercise it.
bool corrupted_exchange_lost(sim::FaultSite site, pool::ClientId id,
                             net::TimePoint now, MessageType type,
                             std::optional<net::IPv4Address> requested,
                             std::optional<net::IPv4Address> ciaddr) {
    sim::FaultInjector* injector = sim::fault_injector();
    if (injector == nullptr) return false;
    WireMessage message;
    message.xid = std::uint32_t(id) ^ std::uint32_t(now.unix_seconds());
    message.type = type;
    message.requested_address = requested;
    if (ciaddr) message.ciaddr = *ciaddr;
    for (int i = 0; i < 8; ++i)
        message.client_id.push_back(std::uint8_t(id >> (8 * i)));
    auto bytes = encode(message);
    if (!injector->corrupt_wire(site, id, bytes)) return true;
    try {
        return !(decode(bytes) == message);
    } catch (const ParseError&) {
        return true;
    }
}

}  // namespace

Client::Client(ClientConfig config, pool::ClientId id, Server& server,
               sim::Simulation& sim, std::function<bool()> reachable)
    : config_(config),
      id_(id),
      server_(&server),
      sim_(&sim),
      reachable_(std::move(reachable)) {
    if (config_.t1_fraction <= 0.0 || config_.t1_fraction >= 1.0 ||
        config_.t2_fraction <= config_.t1_fraction || config_.t2_fraction >= 1.0)
        throw Error("bad DHCP timer fractions");
    if (config_.request_retries < 1) throw Error("request_retries must be >= 1");
}

void Client::power_on() {
    if (state_ != ClientState::Off) return;
    state_ = ClientState::Init;
    if (!config_.remember_lease_across_reboot) remembered_.reset();
    try_acquire();
}

void Client::power_off(bool graceful) {
    cancel_timer();
    const bool had_address = address_.has_value();
    if (graceful && had_address && reachable_()) {
        if (server_->online()) {
            // RELEASE is fire-and-forget: a swallowed one just leaves the
            // lease to expire server-side. A deferred one arrives late but
            // arrives — same as delivered, since we're powering off.
            const auto decision =
                sim::gate_message(sim::FaultSite::DhcpRelease, id_, sim_->now());
            const bool lost =
                decision.kind == Kind::Drop ||
                (decision.kind == Kind::Corrupt &&
                 corrupted_exchange_lost(sim::FaultSite::DhcpRelease, id_,
                                         sim_->now(), MessageType::Release,
                                         std::nullopt, *address_));
            if (!lost) {
                server_->handle_release(id_);
                if (decision.kind == Kind::Duplicate)
                    server_->handle_release(id_);  // replayed RELEASE
            }
        }
        remembered_.reset();
    } else if (had_address) {
        // Abrupt power cut: the lease lives on server-side; remember it for
        // INIT-REBOOT on restart when configured to.
        remembered_ = address_;
    }
    if (had_address) {
        address_.reset();
        if (on_lost_)
            on_lost_(graceful ? LossReason::ClientRelease : LossReason::ClientReboot);
    }
    pending_request_.reset();
    request_attempts_ = 0;
    backoff_ = net::Duration{0};
    state_ = ClientState::Off;
}

void Client::link_restored() {
    if (state_ == ClientState::Init) try_acquire();
    // In Renewing/Rebinding the pending retry timer will succeed now; in
    // Requesting the retransmit timer is already pending. A real client
    // does not get link-state callbacks into its DHCP state machine either.
}

void Client::link_lost() {
    // Nothing: renew attempts will fail and back off per RFC timers.
}

void Client::enter_init() {
    state_ = ClientState::Init;
    address_.reset();
    try_acquire();
}

void Client::try_acquire() {
    if (state_ != ClientState::Init) return;
    cancel_timer();
    if (!reachable_()) return;  // dormant until link_restored()
    const net::TimePoint now = sim_->now();
    if (!server_->online()) {
        // Server down reads as silence: retransmit with backoff.
        sim::cause_note(id_, sim::CauseKind::ServerDown,
                        sim::CauseSite::DhcpServerOffline, now);
        schedule_timer(now + next_backoff());
        return;
    }

    // INIT-REBOOT: ask for the remembered address directly.
    if (remembered_) {
        const net::IPv4Address addr = *remembered_;
        const auto decision =
            sim::gate_message(sim::FaultSite::DhcpRequest, id_, now);
        if (decision.kind == Kind::Defer) {
            schedule_timer(now + decision.defer);  // retry INIT-REBOOT then
            return;
        }
        remembered_.reset();
        if (decision.kind == Kind::Drop ||
            (decision.kind == Kind::Corrupt &&
             corrupted_exchange_lost(sim::FaultSite::DhcpRequest, id_, now,
                                     MessageType::Request, addr,
                                     std::nullopt))) {
            sim::cause_note(id_, sim::CauseKind::MessageFault,
                            sim::CauseSite::FaultMessage, now);
            begin_requesting(addr);
            return;
        }
        RequestResult result = server_->handle_request(id_, addr);
        if (decision.kind == Kind::Duplicate)
            result = server_->handle_request(id_, addr);  // replayed REQUEST
        if (result.ack) {
            become_bound(result);
            return;
        }
        // NAK: fall through to full INIT.
    }

    const auto decision =
        sim::gate_message(sim::FaultSite::DhcpDiscover, id_, now);
    if (decision.kind == Kind::Defer) {
        schedule_timer(now + decision.defer);
        return;
    }
    if (decision.kind == Kind::Drop ||
        (decision.kind == Kind::Corrupt &&
         corrupted_exchange_lost(sim::FaultSite::DhcpDiscover, id_, now,
                                 MessageType::Discover, std::nullopt,
                                 std::nullopt))) {
        // DISCOVER (or its OFFER) lost: retransmit with backoff.
        sim::cause_note(id_, sim::CauseKind::MessageFault,
                        sim::CauseSite::FaultMessage, now);
        schedule_timer(now + next_backoff());
        return;
    }
    auto offer = server_->handle_discover(id_);
    if (decision.kind == Kind::Duplicate && offer)
        offer = server_->handle_discover(id_);  // replayed DISCOVER
    if (offer) {
        // The REQUEST answering this OFFER is its own gated exchange.
        const auto request =
            sim::gate_message(sim::FaultSite::DhcpRequest, id_, now);
        if (request.kind == Kind::Defer) {
            // Whole acquisition retries later; the pool holds the
            // allocation, so re-discovery returns the same address.
            schedule_timer(now + request.defer);
            return;
        }
        if (request.kind == Kind::Drop ||
            (request.kind == Kind::Corrupt &&
             corrupted_exchange_lost(sim::FaultSite::DhcpRequest, id_, now,
                                     MessageType::Request, offer->address,
                                     std::nullopt))) {
            sim::cause_note(id_, sim::CauseKind::MessageFault,
                            sim::CauseSite::FaultMessage, now);
            begin_requesting(offer->address);
            return;
        }
        RequestResult result = server_->handle_request(id_, offer->address);
        if (request.kind == Kind::Duplicate)
            result = server_->handle_request(id_, offer->address);
        if (result.ack) {
            become_bound(result);
            return;
        }
    } else {
        sim::cause_note(id_, sim::CauseKind::PoolExhausted,
                        sim::CauseSite::DhcpPoolExhausted, now);
    }
    // Pool exhausted or raced away; retry later.
    schedule_timer(now + config_.init_retry);
}

void Client::begin_requesting(net::IPv4Address addr) {
    // REQUEST sent, reply swallowed: retransmit with backoff instead of
    // stalling (RFC 2131 §3.1.5).
    state_ = ClientState::Requesting;
    pending_request_ = addr;
    request_attempts_ = 1;
    schedule_timer(sim_->now() + next_backoff());
}

void Client::resend_request() {
    if (!pending_request_ || !reachable_()) {
        abandon_request();
        return;
    }
    const net::TimePoint now = sim_->now();
    if (!server_->online()) {
        sim::cause_note(id_, sim::CauseKind::ServerDown,
                        sim::CauseSite::DhcpServerOffline, now);
        if (++request_attempts_ > config_.request_retries) {
            abandon_request();
            return;
        }
        schedule_timer(now + next_backoff());
        return;
    }
    const auto decision =
        sim::gate_message(sim::FaultSite::DhcpRequest, id_, now);
    if (decision.kind == Kind::Defer) {
        schedule_timer(now + decision.defer);
        return;
    }
    if (decision.kind == Kind::Drop ||
        (decision.kind == Kind::Corrupt &&
         corrupted_exchange_lost(sim::FaultSite::DhcpRequest, id_, now,
                                 MessageType::Request, *pending_request_,
                                 std::nullopt))) {
        sim::cause_note(id_, sim::CauseKind::MessageFault,
                        sim::CauseSite::FaultMessage, now);
        if (++request_attempts_ > config_.request_retries) {
            abandon_request();
            return;
        }
        schedule_timer(now + next_backoff());
        return;
    }
    const net::IPv4Address addr = *pending_request_;
    RequestResult result = server_->handle_request(id_, addr);
    if (decision.kind == Kind::Duplicate)
        result = server_->handle_request(id_, addr);
    if (result.ack) {
        become_bound(result);
        return;
    }
    abandon_request();  // NAK: restart from INIT with a fresh DISCOVER
}

void Client::abandon_request() {
    pending_request_.reset();
    request_attempts_ = 0;
    state_ = ClientState::Init;
    try_acquire();  // dormant if unreachable, else a fresh DISCOVER
}

net::Duration Client::next_backoff() {
    backoff_ = backoff_.count() <= 0
                   ? config_.retransmit_base
                   : std::min(backoff_ + backoff_, config_.retransmit_max);
    return backoff_;
}

void Client::become_bound(const RequestResult& result) {
    const bool changed = !address_ || *address_ != result.address;
    address_ = result.address;
    lease_granted_ = result.lease_granted;
    lease_expiry_ = result.lease_expiry;
    const auto lease_len = double((lease_expiry_ - lease_granted_).count());
    t1_ = lease_granted_ +
          net::Duration{std::int64_t(lease_len * config_.t1_fraction)};
    t2_ = lease_granted_ +
          net::Duration{std::int64_t(lease_len * config_.t2_fraction)};
    state_ = ClientState::Bound;
    pending_request_.reset();
    request_attempts_ = 0;
    backoff_ = net::Duration{0};
    schedule_timer(t1_);
    if (changed) {
        if (on_acquired_) on_acquired_(result.address);
    } else {
        // The tenure survived: stale trouble notes no longer explain the
        // next change.
        sim::cause_renew_ok(id_);
    }
}

void Client::lose_address(LossReason reason) {
    const bool had = address_.has_value();
    address_.reset();
    remembered_.reset();
    if (had && on_lost_) on_lost_(reason);
    enter_init();
}

void Client::attempt_renew() {
    if (!address_) return;
    if (reachable_() && !server_->online())
        sim::cause_note(id_, sim::CauseKind::ServerDown,
                        sim::CauseSite::DhcpServerOffline, sim_->now());
    if (reachable_() && server_->online()) {
        const net::TimePoint now = sim_->now();
        const auto decision =
            sim::gate_message(sim::FaultSite::DhcpRenew, id_, now);
        if (decision.kind == Kind::Defer) {
            // Jittered, not lost: retry when the jitter clears, no backoff.
            schedule_timer(std::min(now + decision.defer, lease_expiry_));
            return;
        }
        if (decision.kind != Kind::Drop &&
            !(decision.kind == Kind::Corrupt &&
              corrupted_exchange_lost(sim::FaultSite::DhcpRenew, id_, now,
                                      MessageType::Request, std::nullopt,
                                      *address_))) {
            RequestResult result = server_->handle_renew(id_, *address_);
            if (decision.kind == Kind::Duplicate)
                result = server_->handle_renew(id_, *address_);
            if (result.ack) {
                become_bound(result);
                return;
            }
            // DHCPNAK: administrative refusal; restart immediately.
            lose_address(LossReason::ServerNak);
            return;
        }
        // Exchange swallowed by a fault: same as unreachable, back off.
        sim::cause_note(id_, sim::CauseKind::MessageFault,
                        sim::CauseSite::FaultMessage, now);
    }
    backoff_renew();
}

void Client::backoff_renew() {
    // Unreachable (or silenced): back off. RFC 2131 §4.4.5 — wait half the
    // remaining time to T2 (or to expiry when rebinding), floored at
    // min_retry.
    const net::TimePoint now = sim_->now();
    const net::TimePoint deadline =
        state_ == ClientState::Renewing ? t2_ : lease_expiry_;
    net::Duration wait{std::max((deadline - now).count() / 2,
                                config_.min_retry.count())};
    net::TimePoint next = now + wait;
    if (next >= lease_expiry_) next = lease_expiry_;
    else if (state_ == ClientState::Renewing && next > t2_) next = t2_;
    schedule_timer(next);
}

void Client::schedule_timer(net::TimePoint when) {
    cancel_timer();
    timer_ = sim_->at(std::max(when, sim_->now()),
                      [this](net::TimePoint) { on_timer(); });
}

void Client::cancel_timer() {
    if (timer_) {
        sim_->cancel(*timer_);
        timer_.reset();
    }
}

void Client::on_timer() {
    timer_.reset();
    const net::TimePoint now = sim_->now();
    switch (state_) {
        case ClientState::Off:
            break;
        case ClientState::Init:
            try_acquire();
            break;
        case ClientState::Requesting:
            resend_request();
            break;
        case ClientState::Bound:
            state_ = ClientState::Renewing;
            attempt_renew();
            break;
        case ClientState::Renewing:
            if (now >= lease_expiry_) {
                lose_address(LossReason::LeaseExpired);
            } else {
                if (now >= t2_) state_ = ClientState::Rebinding;
                attempt_renew();
            }
            break;
        case ClientState::Rebinding:
            if (now >= lease_expiry_) {
                lose_address(LossReason::LeaseExpired);
            } else {
                attempt_renew();
            }
            break;
    }
}

}  // namespace dynaddr::dhcp

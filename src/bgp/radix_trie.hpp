#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netcore/ipv4.hpp"

namespace dynaddr::bgp {

/// A binary radix trie mapping IPv4 prefixes to 32-bit values (origin
/// ASNs here), supporting exact insert/lookup and longest-prefix match.
///
/// Nodes live contiguously in a vector; child links are indices, so the
/// structure is cache-friendly, trivially copyable/movable, and needs no
/// manual memory management. Inserting the same prefix twice overwrites
/// the stored value (last-writer-wins, matching pfx2as snapshot
/// semantics).
class RadixTrie {
public:
    RadixTrie();

    /// Inserts or replaces the value for `prefix`.
    void insert(net::IPv4Prefix prefix, std::uint32_t value);

    /// Exact-match lookup for a prefix.
    [[nodiscard]] std::optional<std::uint32_t> exact(net::IPv4Prefix prefix) const;

    /// Longest-prefix match: the value on the most specific inserted
    /// prefix containing `addr`, or nullopt when nothing covers it.
    [[nodiscard]] std::optional<std::uint32_t> longest_match(net::IPv4Address addr) const;

    /// The most specific inserted prefix containing `addr` together with
    /// its value (the paper needs the prefix itself for Table 7).
    struct Match {
        net::IPv4Prefix prefix;
        std::uint32_t value;
    };
    [[nodiscard]] std::optional<Match> longest_match_entry(net::IPv4Address addr) const;

    /// Number of stored prefixes.
    [[nodiscard]] std::size_t size() const { return entries_; }

    /// Visits all (prefix, value) pairs in no particular order.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for_each_impl(0, 0u, 0, fn);
    }

private:
    // Dir24_8 compiles its flat lookup tables straight off nodes_ (one DFS
    // carrying the inherited match instead of per-prefix range painting).
    friend class Dir24_8;

    struct Node {
        std::int32_t child[2] = {-1, -1};
        std::uint32_t value = 0;
        bool has_value = false;
    };

    template <typename Fn>
    void for_each_impl(std::int32_t index, std::uint32_t bits, int depth,
                       Fn&& fn) const {
        const Node& node = nodes_[std::size_t(index)];
        if (node.has_value)
            fn(net::IPv4Prefix{net::IPv4Address{bits}, depth}, node.value);
        for (int b = 0; b < 2; ++b) {
            if (node.child[b] < 0) continue;
            const std::uint32_t child_bits =
                depth < 32 ? bits | (std::uint32_t(b) << (31 - depth)) : bits;
            for_each_impl(node.child[b], child_bits, depth + 1, fn);
        }
    }

    std::vector<Node> nodes_;
    std::size_t entries_ = 0;
};

}  // namespace dynaddr::bgp

#include "bgp/prefix_table.hpp"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "netcore/error.hpp"

namespace dynaddr::bgp {

MonthKey month_key_of(net::TimePoint t) {
    const net::CivilTime civil = t.to_civil();
    return month_key(civil.year, civil.month);
}

MonthKey month_key(int year, int month) {
    if (month < 1 || month > 12) throw Error("bad month " + std::to_string(month));
    return MonthKey{year} * 12 + (month - 1);
}

void PrefixTable::announce(MonthKey month, net::IPv4Prefix prefix,
                           std::uint32_t asn) {
    Snapshot& snapshot = snapshots_[month];
    snapshot.trie.insert(prefix, asn);
    // The compiled table (if any) no longer matches the trie.
    snapshot.fast.store(nullptr, std::memory_order_release);
    snapshot.fast_storage.reset();
}

void PrefixTable::announce_range(MonthKey first, MonthKey last,
                                 net::IPv4Prefix prefix, std::uint32_t asn) {
    if (first > last) throw Error("announce_range: first > last");
    for (MonthKey m = first; m <= last; ++m) announce(m, prefix, asn);
}

std::optional<std::uint32_t> PrefixTable::origin_as(net::IPv4Address addr,
                                                    net::TimePoint t) const {
    auto match = routed_prefix(addr, t);
    if (!match) return std::nullopt;
    return match->value;
}

std::optional<RadixTrie::Match> PrefixTable::routed_prefix(net::IPv4Address addr,
                                                           net::TimePoint t) const {
    const Snapshot* snapshot = snapshot_for(month_key_of(t));
    if (snapshot == nullptr) return std::nullopt;
    if (const Dir24_8* fast = fast_for(*snapshot))
        return fast->longest_match_entry(addr);
    return snapshot->trie.longest_match_entry(addr);
}

const Dir24_8* PrefixTable::fast_for(const Snapshot& snapshot) const {
    const Dir24_8* fast = snapshot.fast.load(std::memory_order_acquire);
    if (fast != nullptr) return fast;
    if (snapshot.trie.size() < fast_lookup_threshold_) return nullptr;
    std::lock_guard lock(snapshot.build_mutex);
    fast = snapshot.fast.load(std::memory_order_relaxed);
    if (fast != nullptr) return fast;  // another thread compiled it
    snapshot.fast_storage = std::make_unique<Dir24_8>(snapshot.trie);
    fast = snapshot.fast_storage.get();
    snapshot.fast.store(fast, std::memory_order_release);
    publish_mem();
    return fast;
}

void PrefixTable::publish_mem() const {
    std::uint64_t bytes = 0;
    std::uint64_t compiled = 0;
    for (const auto& [month, snapshot] : snapshots_) {
        const Dir24_8* fast = snapshot.fast.load(std::memory_order_acquire);
        if (fast == nullptr) continue;
        bytes += fast->memory_bytes();
        ++compiled;
    }
    mem_.report(bytes, compiled);
}

bool PrefixTable::fast_lookup_compiled(MonthKey month) const {
    const Snapshot* snapshot = snapshot_for(month);
    return snapshot != nullptr &&
           snapshot->fast.load(std::memory_order_acquire) != nullptr;
}

std::size_t PrefixTable::load_pfx2as(std::istream& in, MonthKey month) {
    std::size_t loaded = 0;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty() || line.front() == '#') continue;
        const auto fail = [&](const char* what) {
            throw ParseError("pfx2as line " + std::to_string(line_number) +
                             ": " + what + ": '" + line + "'");
        };
        const auto tab1 = line.find('\t');
        const auto tab2 = tab1 == std::string::npos ? std::string::npos
                                                    : line.find('\t', tab1 + 1);
        if (tab2 == std::string::npos) fail("expected three tab-separated fields");
        const auto base = net::IPv4Address::parse(line.substr(0, tab1));
        if (!base) fail("bad prefix address");
        int length = 0;
        {
            const auto field = line.substr(tab1 + 1, tab2 - tab1 - 1);
            auto [ptr, ec] =
                std::from_chars(field.data(), field.data() + field.size(), length);
            if (ec != std::errc{} || ptr != field.data() + field.size() ||
                length < 0 || length > 32)
                fail("bad prefix length");
        }
        // AS field: plain, "A_B" (AS path ambiguity) or "A,B" (MOAS);
        // take the first.
        std::uint32_t asn = 0;
        {
            const auto field = line.substr(tab2 + 1);
            auto end = field.find_first_of("_,");
            const auto first = field.substr(0, end);
            auto [ptr, ec] =
                std::from_chars(first.data(), first.data() + first.size(), asn);
            if (ec != std::errc{} || ptr != first.data() + first.size() || asn == 0)
                fail("bad origin AS");
        }
        announce(month, net::IPv4Prefix{*base, length}, asn);
        ++loaded;
    }
    return loaded;
}

std::size_t PrefixTable::dump_pfx2as(std::ostream& out, MonthKey month) const {
    auto it = snapshots_.find(month);
    if (it == snapshots_.end()) return 0;
    std::vector<std::pair<net::IPv4Prefix, std::uint32_t>> routes;
    it->second.trie.for_each([&](net::IPv4Prefix prefix, std::uint32_t asn) {
        routes.emplace_back(prefix, asn);
    });
    std::sort(routes.begin(), routes.end());
    for (const auto& [prefix, asn] : routes)
        out << prefix.base().to_string() << '\t' << prefix.length() << '\t'
            << asn << '\n';
    return routes.size();
}

std::vector<MonthKey> PrefixTable::snapshot_months() const {
    std::vector<MonthKey> months;
    months.reserve(snapshots_.size());
    for (const auto& [month, snapshot] : snapshots_) months.push_back(month);
    return months;
}

std::size_t PrefixTable::route_count() const {
    std::size_t total = 0;
    for (const auto& [month, snapshot] : snapshots_) total += snapshot.trie.size();
    return total;
}

const PrefixTable::Snapshot* PrefixTable::snapshot_for(MonthKey month) const {
    if (snapshots_.empty()) return nullptr;
    auto it = snapshots_.upper_bound(month);
    if (it == snapshots_.begin()) return &it->second;  // before first snapshot
    return &std::prev(it)->second;
}

}  // namespace dynaddr::bgp

#include "bgp/radix_trie.hpp"

namespace dynaddr::bgp {

namespace {

// Bit `depth` of an address, counting from the most significant (depth 0).
constexpr int bit_at(std::uint32_t value, int depth) {
    return int((value >> (31 - depth)) & 1u);
}

}  // namespace

RadixTrie::RadixTrie() { nodes_.emplace_back(); }

void RadixTrie::insert(net::IPv4Prefix prefix, std::uint32_t value) {
    std::int32_t index = 0;
    const std::uint32_t bits = prefix.base().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
        const int b = bit_at(bits, depth);
        std::int32_t next = nodes_[std::size_t(index)].child[b];
        if (next < 0) {
            next = std::int32_t(nodes_.size());
            nodes_.emplace_back();
            nodes_[std::size_t(index)].child[b] = next;
        }
        index = next;
    }
    Node& node = nodes_[std::size_t(index)];
    if (!node.has_value) ++entries_;
    node.has_value = true;
    node.value = value;
}

std::optional<std::uint32_t> RadixTrie::exact(net::IPv4Prefix prefix) const {
    std::int32_t index = 0;
    const std::uint32_t bits = prefix.base().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
        index = nodes_[std::size_t(index)].child[bit_at(bits, depth)];
        if (index < 0) return std::nullopt;
    }
    const Node& node = nodes_[std::size_t(index)];
    return node.has_value ? std::optional(node.value) : std::nullopt;
}

std::optional<std::uint32_t> RadixTrie::longest_match(net::IPv4Address addr) const {
    auto entry = longest_match_entry(addr);
    if (!entry) return std::nullopt;
    return entry->value;
}

std::optional<RadixTrie::Match> RadixTrie::longest_match_entry(
    net::IPv4Address addr) const {
    std::optional<Match> best;
    std::int32_t index = 0;
    const std::uint32_t bits = addr.value();
    for (int depth = 0; depth <= 32; ++depth) {
        const Node& node = nodes_[std::size_t(index)];
        if (node.has_value)
            best = Match{net::IPv4Prefix{addr, depth}, node.value};
        if (depth == 32) break;
        index = node.child[bit_at(bits, depth)];
        if (index < 0) break;
    }
    return best;
}

}  // namespace dynaddr::bgp

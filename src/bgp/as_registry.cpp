#include "bgp/as_registry.hpp"

#include <algorithm>

#include "netcore/error.hpp"

namespace dynaddr::bgp {

const char* continent_code(Continent c) {
    switch (c) {
        case Continent::Europe: return "EU";
        case Continent::NorthAmerica: return "NA";
        case Continent::Asia: return "AS";
        case Continent::Africa: return "AF";
        case Continent::SouthAmerica: return "SA";
        case Continent::Oceania: return "OC";
    }
    return "??";
}

const char* continent_name(Continent c) {
    switch (c) {
        case Continent::Europe: return "Europe";
        case Continent::NorthAmerica: return "North America";
        case Continent::Asia: return "Asia";
        case Continent::Africa: return "Africa";
        case Continent::SouthAmerica: return "South America";
        case Continent::Oceania: return "Oceania";
    }
    return "Unknown";
}

void AsRegistry::add(AsInfo info) {
    if (info.asn == 0) throw Error("ASN 0 is reserved");
    by_asn_[info.asn] = std::move(info);
}

std::optional<AsInfo> AsRegistry::find(std::uint32_t asn) const {
    auto it = by_asn_.find(asn);
    if (it == by_asn_.end()) return std::nullopt;
    return it->second;
}

std::optional<AsInfo> AsRegistry::find_by_name(const std::string& name) const {
    std::optional<AsInfo> found;
    for (const auto& [asn, info] : by_asn_) {
        if (info.name != name) continue;
        if (found) return std::nullopt;  // ambiguous
        found = info;
    }
    return found;
}

std::vector<AsInfo> AsRegistry::all() const {
    std::vector<AsInfo> out;
    out.reserve(by_asn_.size());
    for (const auto& [asn, info] : by_asn_) out.push_back(info);
    std::sort(out.begin(), out.end(),
              [](const AsInfo& a, const AsInfo& b) { return a.asn < b.asn; });
    return out;
}

}  // namespace dynaddr::bgp

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace dynaddr::bgp {

/// Continents as used by the paper's Figure 1 legend.
enum class Continent { Europe, NorthAmerica, Asia, Africa, SouthAmerica, Oceania };

/// Two-letter code used in the paper's legend ("EU", "NA", ...).
[[nodiscard]] const char* continent_code(Continent c);

/// Full continent name ("Europe", ...).
[[nodiscard]] const char* continent_name(Continent c);

/// Metadata for one autonomous system.
struct AsInfo {
    std::uint32_t asn = 0;
    std::string name;          ///< e.g. "DTAG"
    std::string country_code;  ///< ISO-3166 alpha-2, e.g. "DE"
    Continent continent = Continent::Europe;
};

/// A registry of autonomous systems: the simulator registers the ASes it
/// creates and analysis code resolves ASN -> metadata for grouping by AS,
/// country and continent.
class AsRegistry {
public:
    /// Registers (or replaces) an AS. Throws Error on asn == 0.
    void add(AsInfo info);

    /// Looks up by ASN.
    [[nodiscard]] std::optional<AsInfo> find(std::uint32_t asn) const;

    /// Looks up by name (exact match); nullopt when absent or ambiguous.
    [[nodiscard]] std::optional<AsInfo> find_by_name(const std::string& name) const;

    /// All registered ASes, ascending by ASN.
    [[nodiscard]] std::vector<AsInfo> all() const;

    [[nodiscard]] std::size_t size() const { return by_asn_.size(); }

private:
    std::unordered_map<std::uint32_t, AsInfo> by_asn_;
};

}  // namespace dynaddr::bgp

#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "bgp/dir24_8.hpp"
#include "bgp/radix_trie.hpp"
#include "netcore/obs/memaccount.hpp"
#include "netcore/time.hpp"

namespace dynaddr::bgp {

/// Month index used to key prefix-table snapshots: year*12 + (month-1).
using MonthKey = std::int64_t;

/// MonthKey for the month containing `t` (UTC).
[[nodiscard]] MonthKey month_key_of(net::TimePoint t);

/// MonthKey for a civil year/month.
[[nodiscard]] MonthKey month_key(int year, int month);

/// An IP-to-AS mapping with monthly snapshots, mirroring how the paper
/// uses CAIDA's pfx2as: "we found the month in which a new IP address was
/// assigned to a probe and used CAIDA's IP-to-AS dataset for that month".
///
/// Lookups resolve against the snapshot for the queried month; when that
/// month has no snapshot, the nearest earlier snapshot is used (a fresh
/// table inherits the previous month's routes), falling back to the
/// nearest later one for queries preceding the first snapshot.
///
/// Each snapshot keeps its RadixTrie as builder and oracle; snapshots at
/// or above `fast_lookup_threshold` routes lazily compile a flat Dir24_8
/// table on first lookup so LPM stays O(1) at full-table scale. The
/// compile is double-checked under a mutex, so concurrent const lookups
/// (the sharded analysis pipeline) race safely; announce() is a build-time
/// mutation and must not run concurrently with lookups, exactly as
/// before.
class PrefixTable {
public:
    /// Announces `prefix` with origin `asn` in the snapshot for `month`.
    void announce(MonthKey month, net::IPv4Prefix prefix, std::uint32_t asn);

    /// Announces in every month of [first, last] inclusive.
    void announce_range(MonthKey first, MonthKey last, net::IPv4Prefix prefix,
                        std::uint32_t asn);

    /// Origin AS for `addr` at time `t` (longest-prefix match).
    [[nodiscard]] std::optional<std::uint32_t> origin_as(net::IPv4Address addr,
                                                         net::TimePoint t) const;

    /// The routed (most specific announced) prefix covering `addr` at `t`,
    /// plus its origin — what Table 7 compares across address changes.
    [[nodiscard]] std::optional<RadixTrie::Match> routed_prefix(
        net::IPv4Address addr, net::TimePoint t) const;

    /// Loads one month's snapshot from a CAIDA pfx2as file: one route per
    /// line, `prefix<TAB>length<TAB>asn`, `#` comments and blank lines
    /// skipped. Multi-origin entries like "3356_3549" or "174,3356" take
    /// the first AS, as common practice does. Returns routes loaded;
    /// throws ParseError on malformed lines.
    std::size_t load_pfx2as(std::istream& in, MonthKey month);

    /// Writes one month's snapshot in CAIDA pfx2as format (sorted by
    /// prefix). No-op for a month with no snapshot of its own; returns
    /// routes written.
    std::size_t dump_pfx2as(std::ostream& out, MonthKey month) const;

    /// The months that have their own snapshots, ascending.
    [[nodiscard]] std::vector<MonthKey> snapshot_months() const;

    /// Number of snapshots present.
    [[nodiscard]] std::size_t snapshot_count() const { return snapshots_.size(); }

    /// Total announced routes across snapshots.
    [[nodiscard]] std::size_t route_count() const;

    /// Route count at which a snapshot compiles a Dir24_8 fast path on
    /// first lookup. Small simulated tables stay trie-only (a 64 MiB flat
    /// table per tiny snapshot would be pure waste); full pfx2as imports
    /// cross the threshold. Settable mainly for tests and benches.
    void set_fast_lookup_threshold(std::size_t routes) {
        fast_lookup_threshold_ = routes;
    }
    [[nodiscard]] std::size_t fast_lookup_threshold() const {
        return fast_lookup_threshold_;
    }

    /// True when the snapshot serving month `month` has a compiled
    /// Dir24_8 (observability for tests).
    [[nodiscard]] bool fast_lookup_compiled(MonthKey month) const;

private:
    /// One month's routes: the trie plus a lazily-compiled flat table.
    struct Snapshot {
        RadixTrie trie;
        mutable std::atomic<const Dir24_8*> fast{nullptr};
        mutable std::unique_ptr<Dir24_8> fast_storage;
        mutable std::mutex build_mutex;
    };

    [[nodiscard]] const Snapshot* snapshot_for(MonthKey month) const;
    /// The snapshot's Dir24_8, compiling it if warranted; nullptr when the
    /// snapshot stays trie-only.
    [[nodiscard]] const Dir24_8* fast_for(const Snapshot& snapshot) const;

    /// Re-sums compiled Dir24_8 bytes across snapshots into mem_. Called
    /// after each lazy compile; reads only atomics and immutable tables.
    void publish_mem() const;

    std::map<MonthKey, Snapshot> snapshots_;
    std::size_t fast_lookup_threshold_ = 4096;
    /// Capacity accounting (mem.bgp.dir24_8): the compiled fast tables
    /// only — the tries are loaded once and stay a small, fixed cost.
    mutable obs::MemRegistration mem_{"bgp.dir24_8"};
};

}  // namespace dynaddr::bgp

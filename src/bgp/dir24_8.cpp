#include "bgp/dir24_8.hpp"

#include <algorithm>

namespace dynaddr::bgp {

void Dir24_8::build(const RadixTrie& trie) {
    tbl24_.assign(std::size_t{1} << 24, kEmpty);
    tbl8_.clear();
    results_.clear();
    results_.reserve(trie.size());
    compile24(trie, 0, 0u, 0, kEmpty);
}

void Dir24_8::compile24(const RadixTrie& trie, std::int32_t node,
                        std::uint32_t bits, int depth,
                        std::uint32_t inherited) {
    const RadixTrie::Node& n = trie.nodes_[std::size_t(node)];
    if (n.has_value) {
        inherited = std::uint32_t(results_.size());
        results_.push_back({n.value, depth});
    }
    if (depth == 24) {
        const std::size_t slot = bits >> 8;
        if (n.child[0] < 0 && n.child[1] < 0) {
            tbl24_[slot] = inherited;
            return;
        }
        // Longer prefixes below: expand into a second-level table.
        const auto sub = std::uint32_t(tbl8_.size() >> 8);
        tbl8_.resize(tbl8_.size() + 256, kEmpty);
        compile8(trie, node, 0u, 24, inherited, std::size_t(sub) << 8);
        tbl24_[slot] = kSubtableFlag | sub;
        return;
    }
    for (std::uint32_t b = 0; b < 2; ++b) {
        const std::uint32_t child_bits = bits | (b << (31 - depth));
        if (n.child[b] >= 0) {
            compile24(trie, n.child[b], child_bits, depth + 1, inherited);
        } else {
            // No subtree: the whole half inherits the match seen so far.
            const std::size_t first = child_bits >> 8;
            const std::size_t count = std::size_t{1} << (24 - (depth + 1));
            std::fill_n(tbl24_.begin() + std::ptrdiff_t(first), count, inherited);
        }
    }
}

void Dir24_8::compile8(const RadixTrie& trie, std::int32_t node,
                       std::uint32_t low, int depth, std::uint32_t inherited,
                       std::size_t sub_base) {
    const RadixTrie::Node& n = trie.nodes_[std::size_t(node)];
    if (depth > 24 && n.has_value) {
        inherited = std::uint32_t(results_.size());
        results_.push_back({n.value, depth});
    }
    if (depth == 32) {
        tbl8_[sub_base + low] = inherited;
        return;
    }
    for (std::uint32_t b = 0; b < 2; ++b) {
        const std::uint32_t child_low = low | (b << (31 - depth));
        if (n.child[b] >= 0) {
            compile8(trie, n.child[b], child_low, depth + 1, inherited, sub_base);
        } else {
            const std::size_t count = std::size_t{1} << (32 - (depth + 1));
            std::fill_n(tbl8_.begin() + std::ptrdiff_t(sub_base + child_low),
                        count, inherited);
        }
    }
}

}  // namespace dynaddr::bgp

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/radix_trie.hpp"
#include "netcore/ipv4.hpp"

namespace dynaddr::bgp {

/// DIR-24-8 longest-prefix-match table compiled from a RadixTrie.
///
/// The classic two-level scheme (Gupta/Lin/McKeown, as in DPDK's LPM and
/// Click's iproutetable): a 2^24-entry first-level table indexed by the
/// top 24 address bits resolves every prefix of length <= 24 in one load;
/// slots covered by a longer prefix point at a 256-entry second-level
/// table indexed by the low byte. Lookups are one or two dependent loads
/// regardless of table size — flat at 1M prefixes — while the trie stays
/// the builder and behavioural oracle.
///
/// Compilation is a single DFS over the trie carrying the inherited
/// (shallower) match downward, so each table slot is written O(1) times:
/// O(nodes + 2^24) total, rather than the O(sum of prefix ranges) a
/// naive paint-by-prefix build costs at scale.
///
/// The compiled table is immutable; rebuild after the trie changes.
class Dir24_8 {
public:
    /// An empty table: every lookup misses.
    Dir24_8() = default;

    /// Compiles `trie` (equivalent to build()).
    explicit Dir24_8(const RadixTrie& trie) { build(trie); }

    /// Recompiles the tables from `trie`, replacing previous contents.
    void build(const RadixTrie& trie);

    /// Longest-prefix match: the value on the most specific prefix
    /// containing `addr`, or nullopt when nothing covers it.
    [[nodiscard]] std::optional<std::uint32_t> longest_match(
        net::IPv4Address addr) const {
        const std::uint32_t slot = resolve(addr);
        if (slot == kEmpty) return std::nullopt;
        return results_[slot].value;
    }

    /// The most specific prefix containing `addr` with its value; same
    /// contract as RadixTrie::longest_match_entry.
    [[nodiscard]] std::optional<RadixTrie::Match> longest_match_entry(
        net::IPv4Address addr) const {
        const std::uint32_t slot = resolve(addr);
        if (slot == kEmpty) return std::nullopt;
        const Result& result = results_[slot];
        return RadixTrie::Match{net::IPv4Prefix{addr, result.length},
                                result.value};
    }

    /// Number of prefixes compiled in.
    [[nodiscard]] std::size_t size() const { return results_.size(); }

    /// Number of 256-entry second-level tables in use.
    [[nodiscard]] std::size_t subtable_count() const { return tbl8_.size() >> 8; }

    /// Heap footprint of the compiled tables, for memory accounting.
    [[nodiscard]] std::size_t memory_bytes() const {
        return tbl24_.capacity() * sizeof(std::uint32_t) +
               tbl8_.capacity() * sizeof(std::uint32_t) +
               results_.capacity() * sizeof(Result);
    }

private:
    static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
    static constexpr std::uint32_t kSubtableFlag = 0x80000000u;

    struct Result {
        std::uint32_t value = 0;
        int length = 0;
    };

    /// Result index for `addr`, or kEmpty.
    [[nodiscard]] std::uint32_t resolve(net::IPv4Address addr) const {
        if (tbl24_.empty()) return kEmpty;
        const std::uint32_t bits = addr.value();
        std::uint32_t entry = tbl24_[bits >> 8];
        // kEmpty has the subtable bit set: test it first.
        if (entry == kEmpty || !(entry & kSubtableFlag)) return entry;
        return tbl8_[((entry & ~kSubtableFlag) << 8) | (bits & 0xFFu)];
    }

    void compile24(const RadixTrie& trie, std::int32_t node,
                   std::uint32_t bits, int depth, std::uint32_t inherited);
    void compile8(const RadixTrie& trie, std::int32_t node, std::uint32_t low,
                  int depth, std::uint32_t inherited, std::size_t sub_base);

    // First level: result index, or kSubtableFlag | subtable number
    // (kEmpty when nothing covers the /24).
    std::vector<std::uint32_t> tbl24_;
    // Flattened 256-entry second-level tables of result indices.
    std::vector<std::uint32_t> tbl8_;
    std::vector<Result> results_;
};

}  // namespace dynaddr::bgp

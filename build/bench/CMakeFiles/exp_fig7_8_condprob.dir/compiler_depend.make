# Empty compiler generated dependencies file for exp_fig7_8_condprob.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_fig7_8_condprob.dir/exp_fig7_8_condprob.cpp.o"
  "CMakeFiles/exp_fig7_8_condprob.dir/exp_fig7_8_condprob.cpp.o.d"
  "exp_fig7_8_condprob"
  "exp_fig7_8_condprob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig7_8_condprob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/exp_change_attribution.dir/exp_change_attribution.cpp.o"
  "CMakeFiles/exp_change_attribution.dir/exp_change_attribution.cpp.o.d"
  "exp_change_attribution"
  "exp_change_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_change_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for exp_fig2_top_ases.
# This may be replaced when dependencies are built.

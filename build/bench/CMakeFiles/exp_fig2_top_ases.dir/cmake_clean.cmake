file(REMOVE_RECURSE
  "CMakeFiles/exp_fig2_top_ases.dir/exp_fig2_top_ases.cpp.o"
  "CMakeFiles/exp_fig2_top_ases.dir/exp_fig2_top_ases.cpp.o.d"
  "exp_fig2_top_ases"
  "exp_fig2_top_ases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig2_top_ases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for exp_admin_renumbering.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_admin_renumbering.dir/exp_admin_renumbering.cpp.o"
  "CMakeFiles/exp_admin_renumbering.dir/exp_admin_renumbering.cpp.o.d"
  "exp_admin_renumbering"
  "exp_admin_renumbering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_admin_renumbering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

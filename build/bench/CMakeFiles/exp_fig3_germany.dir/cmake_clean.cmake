file(REMOVE_RECURSE
  "CMakeFiles/exp_fig3_germany.dir/exp_fig3_germany.cpp.o"
  "CMakeFiles/exp_fig3_germany.dir/exp_fig3_germany.cpp.o.d"
  "exp_fig3_germany"
  "exp_fig3_germany.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig3_germany.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for exp_fig3_germany.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for exp_churn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_fig9_duration.dir/exp_fig9_duration.cpp.o"
  "CMakeFiles/exp_fig9_duration.dir/exp_fig9_duration.cpp.o.d"
  "exp_fig9_duration"
  "exp_fig9_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig9_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for exp_fig9_duration.
# This may be replaced when dependencies are built.

# Empty dependencies file for exp_fig6_firmware.
# This may be replaced when dependencies are built.

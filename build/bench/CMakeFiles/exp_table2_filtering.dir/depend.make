# Empty dependencies file for exp_table2_filtering.
# This may be replaced when dependencies are built.

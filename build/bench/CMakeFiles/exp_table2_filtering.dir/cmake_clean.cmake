file(REMOVE_RECURSE
  "CMakeFiles/exp_table2_filtering.dir/exp_table2_filtering.cpp.o"
  "CMakeFiles/exp_table2_filtering.dir/exp_table2_filtering.cpp.o.d"
  "exp_table2_filtering"
  "exp_table2_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table2_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

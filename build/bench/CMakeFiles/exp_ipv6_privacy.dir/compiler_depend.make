# Empty compiler generated dependencies file for exp_ipv6_privacy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_ipv6_privacy.dir/exp_ipv6_privacy.cpp.o"
  "CMakeFiles/exp_ipv6_privacy.dir/exp_ipv6_privacy.cpp.o.d"
  "exp_ipv6_privacy"
  "exp_ipv6_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ipv6_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

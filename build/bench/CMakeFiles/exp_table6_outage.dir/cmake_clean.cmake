file(REMOVE_RECURSE
  "CMakeFiles/exp_table6_outage.dir/exp_table6_outage.cpp.o"
  "CMakeFiles/exp_table6_outage.dir/exp_table6_outage.cpp.o.d"
  "exp_table6_outage"
  "exp_table6_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table6_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

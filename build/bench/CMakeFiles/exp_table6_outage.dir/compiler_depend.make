# Empty compiler generated dependencies file for exp_table6_outage.
# This may be replaced when dependencies are built.

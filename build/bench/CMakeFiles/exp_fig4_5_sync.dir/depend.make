# Empty dependencies file for exp_fig4_5_sync.
# This may be replaced when dependencies are built.

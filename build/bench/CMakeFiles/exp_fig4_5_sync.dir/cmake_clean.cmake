file(REMOVE_RECURSE
  "CMakeFiles/exp_fig4_5_sync.dir/exp_fig4_5_sync.cpp.o"
  "CMakeFiles/exp_fig4_5_sync.dir/exp_fig4_5_sync.cpp.o.d"
  "exp_fig4_5_sync"
  "exp_fig4_5_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig4_5_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

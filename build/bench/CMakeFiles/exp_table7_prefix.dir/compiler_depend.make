# Empty compiler generated dependencies file for exp_table7_prefix.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_table7_prefix.dir/exp_table7_prefix.cpp.o"
  "CMakeFiles/exp_table7_prefix.dir/exp_table7_prefix.cpp.o.d"
  "exp_table7_prefix"
  "exp_table7_prefix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table7_prefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/exp_fig1_continents.dir/exp_fig1_continents.cpp.o"
  "CMakeFiles/exp_fig1_continents.dir/exp_fig1_continents.cpp.o.d"
  "exp_fig1_continents"
  "exp_fig1_continents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig1_continents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

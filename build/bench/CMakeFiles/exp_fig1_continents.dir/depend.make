# Empty dependencies file for exp_fig1_continents.
# This may be replaced when dependencies are built.

# Empty dependencies file for exp_table5_periodic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_table5_periodic.dir/exp_table5_periodic.cpp.o"
  "CMakeFiles/exp_table5_periodic.dir/exp_table5_periodic.cpp.o.d"
  "exp_table5_periodic"
  "exp_table5_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table5_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for blacklist_ttl.
# This may be replaced when dependencies are built.

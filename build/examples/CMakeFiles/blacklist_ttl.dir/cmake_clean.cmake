file(REMOVE_RECURSE
  "CMakeFiles/blacklist_ttl.dir/blacklist_ttl.cpp.o"
  "CMakeFiles/blacklist_ttl.dir/blacklist_ttl.cpp.o.d"
  "blacklist_ttl"
  "blacklist_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blacklist_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

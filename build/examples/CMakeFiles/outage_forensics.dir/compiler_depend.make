# Empty compiler generated dependencies file for outage_forensics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/outage_forensics.dir/outage_forensics.cpp.o"
  "CMakeFiles/outage_forensics.dir/outage_forensics.cpp.o.d"
  "outage_forensics"
  "outage_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outage_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

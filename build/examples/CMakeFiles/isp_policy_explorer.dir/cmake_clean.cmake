file(REMOVE_RECURSE
  "CMakeFiles/isp_policy_explorer.dir/isp_policy_explorer.cpp.o"
  "CMakeFiles/isp_policy_explorer.dir/isp_policy_explorer.cpp.o.d"
  "isp_policy_explorer"
  "isp_policy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_policy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for isp_policy_explorer.
# This may be replaced when dependencies are built.

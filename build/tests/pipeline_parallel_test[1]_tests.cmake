add_test([=[PipelineDeterminism.OutputIdenticalForAnyThreadCount]=]  /root/repo/build/tests/pipeline_parallel_test [==[--gtest_filter=PipelineDeterminism.OutputIdenticalForAnyThreadCount]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[PipelineDeterminism.OutputIdenticalForAnyThreadCount]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  pipeline_parallel_test_TESTS PipelineDeterminism.OutputIdenticalForAnyThreadCount)

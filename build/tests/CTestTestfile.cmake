# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/netcore_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/bgp_test[1]_include.cmake")
include("/root/repo/build/tests/pool_test[1]_include.cmake")
include("/root/repo/build/tests/dhcp_test[1]_include.cmake")
include("/root/repo/build/tests/ppp_test[1]_include.cmake")
include("/root/repo/build/tests/atlas_test[1]_include.cmake")
include("/root/repo/build/tests/isp_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_parallel_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/paper_shape_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/pipeline_parallel_test.dir/core/pipeline_parallel_test.cpp.o"
  "CMakeFiles/pipeline_parallel_test.dir/core/pipeline_parallel_test.cpp.o.d"
  "pipeline_parallel_test"
  "pipeline_parallel_test.pdb"
  "pipeline_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/isp_test.dir/isp/isp_test.cpp.o"
  "CMakeFiles/isp_test.dir/isp/isp_test.cpp.o.d"
  "isp_test"
  "isp_test.pdb"
  "isp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for isp_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/address_change_test.cpp.o"
  "CMakeFiles/core_test.dir/core/address_change_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/admin_renumbering_test.cpp.o"
  "CMakeFiles/core_test.dir/core/admin_renumbering_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/change_attribution_test.cpp.o"
  "CMakeFiles/core_test.dir/core/change_attribution_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/cond_prob_test.cpp.o"
  "CMakeFiles/core_test.dir/core/cond_prob_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/daily_churn_test.cpp.o"
  "CMakeFiles/core_test.dir/core/daily_churn_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/filtering_test.cpp.o"
  "CMakeFiles/core_test.dir/core/filtering_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/ipv6_privacy_test.cpp.o"
  "CMakeFiles/core_test.dir/core/ipv6_privacy_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/outages_test.cpp.o"
  "CMakeFiles/core_test.dir/core/outages_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/pipeline_correctness_test.cpp.o"
  "CMakeFiles/core_test.dir/core/pipeline_correctness_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/prefix_geo_test.cpp.o"
  "CMakeFiles/core_test.dir/core/prefix_geo_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/report_test.cpp.o"
  "CMakeFiles/core_test.dir/core/report_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/robustness_test.cpp.o"
  "CMakeFiles/core_test.dir/core/robustness_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/ttf_periodicity_test.cpp.o"
  "CMakeFiles/core_test.dir/core/ttf_periodicity_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

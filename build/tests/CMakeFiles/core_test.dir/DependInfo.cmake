
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/address_change_test.cpp" "tests/CMakeFiles/core_test.dir/core/address_change_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/address_change_test.cpp.o.d"
  "/root/repo/tests/core/admin_renumbering_test.cpp" "tests/CMakeFiles/core_test.dir/core/admin_renumbering_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/admin_renumbering_test.cpp.o.d"
  "/root/repo/tests/core/change_attribution_test.cpp" "tests/CMakeFiles/core_test.dir/core/change_attribution_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/change_attribution_test.cpp.o.d"
  "/root/repo/tests/core/cond_prob_test.cpp" "tests/CMakeFiles/core_test.dir/core/cond_prob_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cond_prob_test.cpp.o.d"
  "/root/repo/tests/core/daily_churn_test.cpp" "tests/CMakeFiles/core_test.dir/core/daily_churn_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/daily_churn_test.cpp.o.d"
  "/root/repo/tests/core/filtering_test.cpp" "tests/CMakeFiles/core_test.dir/core/filtering_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/filtering_test.cpp.o.d"
  "/root/repo/tests/core/ipv6_privacy_test.cpp" "tests/CMakeFiles/core_test.dir/core/ipv6_privacy_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ipv6_privacy_test.cpp.o.d"
  "/root/repo/tests/core/outages_test.cpp" "tests/CMakeFiles/core_test.dir/core/outages_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/outages_test.cpp.o.d"
  "/root/repo/tests/core/pipeline_correctness_test.cpp" "tests/CMakeFiles/core_test.dir/core/pipeline_correctness_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pipeline_correctness_test.cpp.o.d"
  "/root/repo/tests/core/prefix_geo_test.cpp" "tests/CMakeFiles/core_test.dir/core/prefix_geo_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/prefix_geo_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/core_test.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/robustness_test.cpp" "tests/CMakeFiles/core_test.dir/core/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/robustness_test.cpp.o.d"
  "/root/repo/tests/core/ttf_periodicity_test.cpp" "tests/CMakeFiles/core_test.dir/core/ttf_periodicity_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ttf_periodicity_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dynaddr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isp/CMakeFiles/dynaddr_isp.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/dynaddr_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/atlas/CMakeFiles/dynaddr_atlas.dir/DependInfo.cmake"
  "/root/repo/build/src/dhcp/CMakeFiles/dynaddr_dhcp.dir/DependInfo.cmake"
  "/root/repo/build/src/ppp/CMakeFiles/dynaddr_ppp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dynaddr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pool/CMakeFiles/dynaddr_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/netcore/CMakeFiles/dynaddr_netcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

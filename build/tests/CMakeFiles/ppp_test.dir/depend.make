# Empty dependencies file for ppp_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ppp_test.dir/ppp/ppp_test.cpp.o"
  "CMakeFiles/ppp_test.dir/ppp/ppp_test.cpp.o.d"
  "CMakeFiles/ppp_test.dir/ppp/pppoe_wire_test.cpp.o"
  "CMakeFiles/ppp_test.dir/ppp/pppoe_wire_test.cpp.o.d"
  "ppp_test"
  "ppp_test.pdb"
  "ppp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/netcore_test.dir/netcore/chart_test.cpp.o"
  "CMakeFiles/netcore_test.dir/netcore/chart_test.cpp.o.d"
  "CMakeFiles/netcore_test.dir/netcore/csv_test.cpp.o"
  "CMakeFiles/netcore_test.dir/netcore/csv_test.cpp.o.d"
  "CMakeFiles/netcore_test.dir/netcore/histogram_test.cpp.o"
  "CMakeFiles/netcore_test.dir/netcore/histogram_test.cpp.o.d"
  "CMakeFiles/netcore_test.dir/netcore/ipv4_test.cpp.o"
  "CMakeFiles/netcore_test.dir/netcore/ipv4_test.cpp.o.d"
  "CMakeFiles/netcore_test.dir/netcore/ipv6_test.cpp.o"
  "CMakeFiles/netcore_test.dir/netcore/ipv6_test.cpp.o.d"
  "CMakeFiles/netcore_test.dir/netcore/parallel_test.cpp.o"
  "CMakeFiles/netcore_test.dir/netcore/parallel_test.cpp.o.d"
  "CMakeFiles/netcore_test.dir/netcore/rng_test.cpp.o"
  "CMakeFiles/netcore_test.dir/netcore/rng_test.cpp.o.d"
  "CMakeFiles/netcore_test.dir/netcore/time_test.cpp.o"
  "CMakeFiles/netcore_test.dir/netcore/time_test.cpp.o.d"
  "netcore_test"
  "netcore_test.pdb"
  "netcore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netcore/chart_test.cpp" "tests/CMakeFiles/netcore_test.dir/netcore/chart_test.cpp.o" "gcc" "tests/CMakeFiles/netcore_test.dir/netcore/chart_test.cpp.o.d"
  "/root/repo/tests/netcore/csv_test.cpp" "tests/CMakeFiles/netcore_test.dir/netcore/csv_test.cpp.o" "gcc" "tests/CMakeFiles/netcore_test.dir/netcore/csv_test.cpp.o.d"
  "/root/repo/tests/netcore/histogram_test.cpp" "tests/CMakeFiles/netcore_test.dir/netcore/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/netcore_test.dir/netcore/histogram_test.cpp.o.d"
  "/root/repo/tests/netcore/ipv4_test.cpp" "tests/CMakeFiles/netcore_test.dir/netcore/ipv4_test.cpp.o" "gcc" "tests/CMakeFiles/netcore_test.dir/netcore/ipv4_test.cpp.o.d"
  "/root/repo/tests/netcore/ipv6_test.cpp" "tests/CMakeFiles/netcore_test.dir/netcore/ipv6_test.cpp.o" "gcc" "tests/CMakeFiles/netcore_test.dir/netcore/ipv6_test.cpp.o.d"
  "/root/repo/tests/netcore/parallel_test.cpp" "tests/CMakeFiles/netcore_test.dir/netcore/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/netcore_test.dir/netcore/parallel_test.cpp.o.d"
  "/root/repo/tests/netcore/rng_test.cpp" "tests/CMakeFiles/netcore_test.dir/netcore/rng_test.cpp.o" "gcc" "tests/CMakeFiles/netcore_test.dir/netcore/rng_test.cpp.o.d"
  "/root/repo/tests/netcore/time_test.cpp" "tests/CMakeFiles/netcore_test.dir/netcore/time_test.cpp.o" "gcc" "tests/CMakeFiles/netcore_test.dir/netcore/time_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dynaddr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isp/CMakeFiles/dynaddr_isp.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/dynaddr_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/atlas/CMakeFiles/dynaddr_atlas.dir/DependInfo.cmake"
  "/root/repo/build/src/dhcp/CMakeFiles/dynaddr_dhcp.dir/DependInfo.cmake"
  "/root/repo/build/src/ppp/CMakeFiles/dynaddr_ppp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dynaddr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pool/CMakeFiles/dynaddr_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/netcore/CMakeFiles/dynaddr_netcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

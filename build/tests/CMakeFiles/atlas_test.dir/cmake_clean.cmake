file(REMOVE_RECURSE
  "CMakeFiles/atlas_test.dir/atlas/cpe_test.cpp.o"
  "CMakeFiles/atlas_test.dir/atlas/cpe_test.cpp.o.d"
  "CMakeFiles/atlas_test.dir/atlas/datasets_test.cpp.o"
  "CMakeFiles/atlas_test.dir/atlas/datasets_test.cpp.o.d"
  "CMakeFiles/atlas_test.dir/atlas/kroot_test.cpp.o"
  "CMakeFiles/atlas_test.dir/atlas/kroot_test.cpp.o.d"
  "CMakeFiles/atlas_test.dir/atlas/probe_test.cpp.o"
  "CMakeFiles/atlas_test.dir/atlas/probe_test.cpp.o.d"
  "CMakeFiles/atlas_test.dir/atlas/special_test.cpp.o"
  "CMakeFiles/atlas_test.dir/atlas/special_test.cpp.o.d"
  "CMakeFiles/atlas_test.dir/atlas/timeline_test.cpp.o"
  "CMakeFiles/atlas_test.dir/atlas/timeline_test.cpp.o.d"
  "atlas_test"
  "atlas_test.pdb"
  "atlas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pool/address_pool.cpp" "src/pool/CMakeFiles/dynaddr_pool.dir/address_pool.cpp.o" "gcc" "src/pool/CMakeFiles/dynaddr_pool.dir/address_pool.cpp.o.d"
  "/root/repo/src/pool/lease_db.cpp" "src/pool/CMakeFiles/dynaddr_pool.dir/lease_db.cpp.o" "gcc" "src/pool/CMakeFiles/dynaddr_pool.dir/lease_db.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netcore/CMakeFiles/dynaddr_netcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

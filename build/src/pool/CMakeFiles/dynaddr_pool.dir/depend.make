# Empty dependencies file for dynaddr_pool.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdynaddr_pool.a"
)

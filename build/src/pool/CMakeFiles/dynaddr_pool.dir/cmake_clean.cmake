file(REMOVE_RECURSE
  "CMakeFiles/dynaddr_pool.dir/address_pool.cpp.o"
  "CMakeFiles/dynaddr_pool.dir/address_pool.cpp.o.d"
  "CMakeFiles/dynaddr_pool.dir/lease_db.cpp.o"
  "CMakeFiles/dynaddr_pool.dir/lease_db.cpp.o.d"
  "libdynaddr_pool.a"
  "libdynaddr_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaddr_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

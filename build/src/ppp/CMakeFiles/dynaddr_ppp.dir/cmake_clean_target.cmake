file(REMOVE_RECURSE
  "libdynaddr_ppp.a"
)

# Empty dependencies file for dynaddr_ppp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dynaddr_ppp.dir/pppoe_wire.cpp.o"
  "CMakeFiles/dynaddr_ppp.dir/pppoe_wire.cpp.o.d"
  "CMakeFiles/dynaddr_ppp.dir/radius.cpp.o"
  "CMakeFiles/dynaddr_ppp.dir/radius.cpp.o.d"
  "CMakeFiles/dynaddr_ppp.dir/session.cpp.o"
  "CMakeFiles/dynaddr_ppp.dir/session.cpp.o.d"
  "libdynaddr_ppp.a"
  "libdynaddr_ppp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaddr_ppp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

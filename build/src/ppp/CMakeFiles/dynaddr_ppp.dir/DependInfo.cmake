
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppp/pppoe_wire.cpp" "src/ppp/CMakeFiles/dynaddr_ppp.dir/pppoe_wire.cpp.o" "gcc" "src/ppp/CMakeFiles/dynaddr_ppp.dir/pppoe_wire.cpp.o.d"
  "/root/repo/src/ppp/radius.cpp" "src/ppp/CMakeFiles/dynaddr_ppp.dir/radius.cpp.o" "gcc" "src/ppp/CMakeFiles/dynaddr_ppp.dir/radius.cpp.o.d"
  "/root/repo/src/ppp/session.cpp" "src/ppp/CMakeFiles/dynaddr_ppp.dir/session.cpp.o" "gcc" "src/ppp/CMakeFiles/dynaddr_ppp.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netcore/CMakeFiles/dynaddr_netcore.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dynaddr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pool/CMakeFiles/dynaddr_pool.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

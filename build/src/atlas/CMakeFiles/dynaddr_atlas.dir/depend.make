# Empty dependencies file for dynaddr_atlas.
# This may be replaced when dependencies are built.

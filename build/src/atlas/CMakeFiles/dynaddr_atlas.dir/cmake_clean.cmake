file(REMOVE_RECURSE
  "CMakeFiles/dynaddr_atlas.dir/controller.cpp.o"
  "CMakeFiles/dynaddr_atlas.dir/controller.cpp.o.d"
  "CMakeFiles/dynaddr_atlas.dir/cpe.cpp.o"
  "CMakeFiles/dynaddr_atlas.dir/cpe.cpp.o.d"
  "CMakeFiles/dynaddr_atlas.dir/datasets.cpp.o"
  "CMakeFiles/dynaddr_atlas.dir/datasets.cpp.o.d"
  "CMakeFiles/dynaddr_atlas.dir/kroot.cpp.o"
  "CMakeFiles/dynaddr_atlas.dir/kroot.cpp.o.d"
  "CMakeFiles/dynaddr_atlas.dir/probe.cpp.o"
  "CMakeFiles/dynaddr_atlas.dir/probe.cpp.o.d"
  "CMakeFiles/dynaddr_atlas.dir/special_probes.cpp.o"
  "CMakeFiles/dynaddr_atlas.dir/special_probes.cpp.o.d"
  "CMakeFiles/dynaddr_atlas.dir/timeline.cpp.o"
  "CMakeFiles/dynaddr_atlas.dir/timeline.cpp.o.d"
  "libdynaddr_atlas.a"
  "libdynaddr_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaddr_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atlas/controller.cpp" "src/atlas/CMakeFiles/dynaddr_atlas.dir/controller.cpp.o" "gcc" "src/atlas/CMakeFiles/dynaddr_atlas.dir/controller.cpp.o.d"
  "/root/repo/src/atlas/cpe.cpp" "src/atlas/CMakeFiles/dynaddr_atlas.dir/cpe.cpp.o" "gcc" "src/atlas/CMakeFiles/dynaddr_atlas.dir/cpe.cpp.o.d"
  "/root/repo/src/atlas/datasets.cpp" "src/atlas/CMakeFiles/dynaddr_atlas.dir/datasets.cpp.o" "gcc" "src/atlas/CMakeFiles/dynaddr_atlas.dir/datasets.cpp.o.d"
  "/root/repo/src/atlas/kroot.cpp" "src/atlas/CMakeFiles/dynaddr_atlas.dir/kroot.cpp.o" "gcc" "src/atlas/CMakeFiles/dynaddr_atlas.dir/kroot.cpp.o.d"
  "/root/repo/src/atlas/probe.cpp" "src/atlas/CMakeFiles/dynaddr_atlas.dir/probe.cpp.o" "gcc" "src/atlas/CMakeFiles/dynaddr_atlas.dir/probe.cpp.o.d"
  "/root/repo/src/atlas/special_probes.cpp" "src/atlas/CMakeFiles/dynaddr_atlas.dir/special_probes.cpp.o" "gcc" "src/atlas/CMakeFiles/dynaddr_atlas.dir/special_probes.cpp.o.d"
  "/root/repo/src/atlas/timeline.cpp" "src/atlas/CMakeFiles/dynaddr_atlas.dir/timeline.cpp.o" "gcc" "src/atlas/CMakeFiles/dynaddr_atlas.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netcore/CMakeFiles/dynaddr_netcore.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dynaddr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pool/CMakeFiles/dynaddr_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/dhcp/CMakeFiles/dynaddr_dhcp.dir/DependInfo.cmake"
  "/root/repo/build/src/ppp/CMakeFiles/dynaddr_ppp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libdynaddr_atlas.a"
)

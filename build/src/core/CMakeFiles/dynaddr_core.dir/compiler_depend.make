# Empty compiler generated dependencies file for dynaddr_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdynaddr_core.a"
)

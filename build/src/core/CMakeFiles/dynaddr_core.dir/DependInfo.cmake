
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/address_change.cpp" "src/core/CMakeFiles/dynaddr_core.dir/address_change.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/address_change.cpp.o.d"
  "/root/repo/src/core/admin_renumbering.cpp" "src/core/CMakeFiles/dynaddr_core.dir/admin_renumbering.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/admin_renumbering.cpp.o.d"
  "/root/repo/src/core/as_mapping.cpp" "src/core/CMakeFiles/dynaddr_core.dir/as_mapping.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/as_mapping.cpp.o.d"
  "/root/repo/src/core/change_attribution.cpp" "src/core/CMakeFiles/dynaddr_core.dir/change_attribution.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/change_attribution.cpp.o.d"
  "/root/repo/src/core/cond_prob.cpp" "src/core/CMakeFiles/dynaddr_core.dir/cond_prob.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/cond_prob.cpp.o.d"
  "/root/repo/src/core/conlog.cpp" "src/core/CMakeFiles/dynaddr_core.dir/conlog.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/conlog.cpp.o.d"
  "/root/repo/src/core/daily_churn.cpp" "src/core/CMakeFiles/dynaddr_core.dir/daily_churn.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/daily_churn.cpp.o.d"
  "/root/repo/src/core/filtering.cpp" "src/core/CMakeFiles/dynaddr_core.dir/filtering.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/filtering.cpp.o.d"
  "/root/repo/src/core/geography.cpp" "src/core/CMakeFiles/dynaddr_core.dir/geography.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/geography.cpp.o.d"
  "/root/repo/src/core/ipv6_privacy.cpp" "src/core/CMakeFiles/dynaddr_core.dir/ipv6_privacy.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/ipv6_privacy.cpp.o.d"
  "/root/repo/src/core/outages.cpp" "src/core/CMakeFiles/dynaddr_core.dir/outages.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/outages.cpp.o.d"
  "/root/repo/src/core/periodicity.cpp" "src/core/CMakeFiles/dynaddr_core.dir/periodicity.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/periodicity.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/dynaddr_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/prefix_change.cpp" "src/core/CMakeFiles/dynaddr_core.dir/prefix_change.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/prefix_change.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/dynaddr_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/report.cpp.o.d"
  "/root/repo/src/core/total_time_fraction.cpp" "src/core/CMakeFiles/dynaddr_core.dir/total_time_fraction.cpp.o" "gcc" "src/core/CMakeFiles/dynaddr_core.dir/total_time_fraction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netcore/CMakeFiles/dynaddr_netcore.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/dynaddr_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/atlas/CMakeFiles/dynaddr_atlas.dir/DependInfo.cmake"
  "/root/repo/build/src/dhcp/CMakeFiles/dynaddr_dhcp.dir/DependInfo.cmake"
  "/root/repo/build/src/ppp/CMakeFiles/dynaddr_ppp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dynaddr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pool/CMakeFiles/dynaddr_pool.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("netcore")
subdirs("sim")
subdirs("bgp")
subdirs("pool")
subdirs("dhcp")
subdirs("ppp")
subdirs("atlas")
subdirs("isp")
subdirs("core")

file(REMOVE_RECURSE
  "libdynaddr_dhcp.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dhcp/client.cpp" "src/dhcp/CMakeFiles/dynaddr_dhcp.dir/client.cpp.o" "gcc" "src/dhcp/CMakeFiles/dynaddr_dhcp.dir/client.cpp.o.d"
  "/root/repo/src/dhcp/server.cpp" "src/dhcp/CMakeFiles/dynaddr_dhcp.dir/server.cpp.o" "gcc" "src/dhcp/CMakeFiles/dynaddr_dhcp.dir/server.cpp.o.d"
  "/root/repo/src/dhcp/wire.cpp" "src/dhcp/CMakeFiles/dynaddr_dhcp.dir/wire.cpp.o" "gcc" "src/dhcp/CMakeFiles/dynaddr_dhcp.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netcore/CMakeFiles/dynaddr_netcore.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dynaddr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pool/CMakeFiles/dynaddr_pool.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/dynaddr_dhcp.dir/client.cpp.o"
  "CMakeFiles/dynaddr_dhcp.dir/client.cpp.o.d"
  "CMakeFiles/dynaddr_dhcp.dir/server.cpp.o"
  "CMakeFiles/dynaddr_dhcp.dir/server.cpp.o.d"
  "CMakeFiles/dynaddr_dhcp.dir/wire.cpp.o"
  "CMakeFiles/dynaddr_dhcp.dir/wire.cpp.o.d"
  "libdynaddr_dhcp.a"
  "libdynaddr_dhcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaddr_dhcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

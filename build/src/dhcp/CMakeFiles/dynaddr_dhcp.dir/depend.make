# Empty dependencies file for dynaddr_dhcp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dynaddr_netcore.dir/ascii_chart.cpp.o"
  "CMakeFiles/dynaddr_netcore.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/dynaddr_netcore.dir/csv.cpp.o"
  "CMakeFiles/dynaddr_netcore.dir/csv.cpp.o.d"
  "CMakeFiles/dynaddr_netcore.dir/histogram.cpp.o"
  "CMakeFiles/dynaddr_netcore.dir/histogram.cpp.o.d"
  "CMakeFiles/dynaddr_netcore.dir/ipv4.cpp.o"
  "CMakeFiles/dynaddr_netcore.dir/ipv4.cpp.o.d"
  "CMakeFiles/dynaddr_netcore.dir/ipv6.cpp.o"
  "CMakeFiles/dynaddr_netcore.dir/ipv6.cpp.o.d"
  "CMakeFiles/dynaddr_netcore.dir/parallel.cpp.o"
  "CMakeFiles/dynaddr_netcore.dir/parallel.cpp.o.d"
  "CMakeFiles/dynaddr_netcore.dir/rng.cpp.o"
  "CMakeFiles/dynaddr_netcore.dir/rng.cpp.o.d"
  "CMakeFiles/dynaddr_netcore.dir/time.cpp.o"
  "CMakeFiles/dynaddr_netcore.dir/time.cpp.o.d"
  "libdynaddr_netcore.a"
  "libdynaddr_netcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaddr_netcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netcore/ascii_chart.cpp" "src/netcore/CMakeFiles/dynaddr_netcore.dir/ascii_chart.cpp.o" "gcc" "src/netcore/CMakeFiles/dynaddr_netcore.dir/ascii_chart.cpp.o.d"
  "/root/repo/src/netcore/csv.cpp" "src/netcore/CMakeFiles/dynaddr_netcore.dir/csv.cpp.o" "gcc" "src/netcore/CMakeFiles/dynaddr_netcore.dir/csv.cpp.o.d"
  "/root/repo/src/netcore/histogram.cpp" "src/netcore/CMakeFiles/dynaddr_netcore.dir/histogram.cpp.o" "gcc" "src/netcore/CMakeFiles/dynaddr_netcore.dir/histogram.cpp.o.d"
  "/root/repo/src/netcore/ipv4.cpp" "src/netcore/CMakeFiles/dynaddr_netcore.dir/ipv4.cpp.o" "gcc" "src/netcore/CMakeFiles/dynaddr_netcore.dir/ipv4.cpp.o.d"
  "/root/repo/src/netcore/ipv6.cpp" "src/netcore/CMakeFiles/dynaddr_netcore.dir/ipv6.cpp.o" "gcc" "src/netcore/CMakeFiles/dynaddr_netcore.dir/ipv6.cpp.o.d"
  "/root/repo/src/netcore/parallel.cpp" "src/netcore/CMakeFiles/dynaddr_netcore.dir/parallel.cpp.o" "gcc" "src/netcore/CMakeFiles/dynaddr_netcore.dir/parallel.cpp.o.d"
  "/root/repo/src/netcore/rng.cpp" "src/netcore/CMakeFiles/dynaddr_netcore.dir/rng.cpp.o" "gcc" "src/netcore/CMakeFiles/dynaddr_netcore.dir/rng.cpp.o.d"
  "/root/repo/src/netcore/time.cpp" "src/netcore/CMakeFiles/dynaddr_netcore.dir/time.cpp.o" "gcc" "src/netcore/CMakeFiles/dynaddr_netcore.dir/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libdynaddr_netcore.a"
)

# Empty dependencies file for dynaddr_netcore.
# This may be replaced when dependencies are built.

# Empty dependencies file for dynaddr_bgp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dynaddr_bgp.dir/as_registry.cpp.o"
  "CMakeFiles/dynaddr_bgp.dir/as_registry.cpp.o.d"
  "CMakeFiles/dynaddr_bgp.dir/prefix_table.cpp.o"
  "CMakeFiles/dynaddr_bgp.dir/prefix_table.cpp.o.d"
  "CMakeFiles/dynaddr_bgp.dir/radix_trie.cpp.o"
  "CMakeFiles/dynaddr_bgp.dir/radix_trie.cpp.o.d"
  "libdynaddr_bgp.a"
  "libdynaddr_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaddr_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

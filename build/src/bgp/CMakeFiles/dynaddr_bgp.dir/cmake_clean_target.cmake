file(REMOVE_RECURSE
  "libdynaddr_bgp.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/as_registry.cpp" "src/bgp/CMakeFiles/dynaddr_bgp.dir/as_registry.cpp.o" "gcc" "src/bgp/CMakeFiles/dynaddr_bgp.dir/as_registry.cpp.o.d"
  "/root/repo/src/bgp/prefix_table.cpp" "src/bgp/CMakeFiles/dynaddr_bgp.dir/prefix_table.cpp.o" "gcc" "src/bgp/CMakeFiles/dynaddr_bgp.dir/prefix_table.cpp.o.d"
  "/root/repo/src/bgp/radix_trie.cpp" "src/bgp/CMakeFiles/dynaddr_bgp.dir/radix_trie.cpp.o" "gcc" "src/bgp/CMakeFiles/dynaddr_bgp.dir/radix_trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netcore/CMakeFiles/dynaddr_netcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libdynaddr_sim.a"
)

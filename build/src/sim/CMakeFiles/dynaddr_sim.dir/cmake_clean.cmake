file(REMOVE_RECURSE
  "CMakeFiles/dynaddr_sim.dir/event_queue.cpp.o"
  "CMakeFiles/dynaddr_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/dynaddr_sim.dir/simulation.cpp.o"
  "CMakeFiles/dynaddr_sim.dir/simulation.cpp.o.d"
  "libdynaddr_sim.a"
  "libdynaddr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaddr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

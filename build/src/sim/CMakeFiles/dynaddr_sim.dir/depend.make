# Empty dependencies file for dynaddr_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dynaddr_isp.dir/outage_model.cpp.o"
  "CMakeFiles/dynaddr_isp.dir/outage_model.cpp.o.d"
  "CMakeFiles/dynaddr_isp.dir/presets.cpp.o"
  "CMakeFiles/dynaddr_isp.dir/presets.cpp.o.d"
  "CMakeFiles/dynaddr_isp.dir/scenario.cpp.o"
  "CMakeFiles/dynaddr_isp.dir/scenario.cpp.o.d"
  "libdynaddr_isp.a"
  "libdynaddr_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaddr_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdynaddr_isp.a"
)

# Empty dependencies file for dynaddr_isp.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for dynaddr.
# This may be replaced when dependencies are built.

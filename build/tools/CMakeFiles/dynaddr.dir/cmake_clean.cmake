file(REMOVE_RECURSE
  "CMakeFiles/dynaddr.dir/dynaddr_cli.cpp.o"
  "CMakeFiles/dynaddr.dir/dynaddr_cli.cpp.o.d"
  "dynaddr"
  "dynaddr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaddr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

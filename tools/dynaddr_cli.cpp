// dynaddr — command-line front end.
//
//   dynaddr simulate --preset paper|outage|quick --out DIR [--seed N]
//                    [--format csv|binary|both]
//       Runs a scenario and writes the dataset bundle plus the supporting
//       context (pfx2as_YYYY-MM.txt per month, registry.csv) to DIR. With
//       --format binary the columnar DAB2 bundle is flushed incrementally
//       while the simulation runs (atlas::BinaryBundleWriter tee).
//
//   dynaddr analyze --data DIR [--report LIST] [--streaming]
//       Loads a bundle (simulated or real; CSV or DAB2, auto-detected).
//       IP-to-AS context comes from pfx2as_YYYY-MM.txt files and
//       registry.csv in DIR when present. LIST is comma-separated from:
//       summary,table2,table5,table6,table7,admin,all (default all).
//       --streaming feeds a DAB2 bundle probe by probe through
//       core::StreamingPipeline (O(probes) memory) — results are
//       byte-identical to the batch path.
//
//   dynaddr convert --in DIR --out DIR [--to csv|binary]
//       Translates a bundle between the CSV and DAB2 representations
//       (default: the opposite of what --in holds) and copies the
//       IP-to-AS context files along.
//
//   dynaddr demo
//       simulate quick + analyze, in memory.
//
//   dynaddr top --port N [--interval S] [--count N]
//       Polls a running dynaddr's stats endpoint (simulate/analyze with
//       --stats-port N) and renders its /top capacity-and-progress view
//       (plus the live /causes ledger counters when a ledger is running)
//       as a self-updating terminal table.
//
//   dynaddr explain --ledger FILE (--client ID | --address A.B.C.D)
//       Answers "why did this address change?" from a cause-ledger file
//       written by simulate --cause-ledger (CSV or DCL1, auto-detected).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "atlas/binary_bundle.hpp"
#include "core/attribution_audit.hpp"
#include "core/change_attribution.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/streaming_pipeline.hpp"
#include "isp/presets.hpp"
#include "netcore/csv.hpp"
#include "netcore/error.hpp"
#include "netcore/obs/flight_recorder.hpp"
#include "netcore/obs/json.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/memaccount.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/obs/profiler.hpp"
#include "netcore/obs/stats_server.hpp"
#include "netcore/obs/timeseries.hpp"
#include "netcore/obs/trace.hpp"
#include "netcore/time.hpp"
#include "sim/cause_ledger.hpp"
#include "sim/faults.hpp"

DYNADDR_LOG_MODULE(cli);

namespace {

using namespace dynaddr;
namespace fs = std::filesystem;

int usage() {
    std::cerr <<
        "usage:\n"
        "  dynaddr simulate --preset paper|outage|quick --out DIR [--seed N]\n"
        "                   [--format csv|binary|both] [--cause-ledger FILE]\n"
        "       (--cause-ledger streams ground-truth cause records to FILE;\n"
        "        .csv extension -> CSV, anything else -> DCL1 columnar)\n"
        "  dynaddr analyze  --data DIR [--report summary,table2,table5,"
        "table6,table7,admin,causes,all] [--threads N] [--streaming]\n"
        "                   [--audit LEDGER]\n"
        "       (--audit joins inferred causes against the ledger's ground\n"
        "        truth and prints the per-cause confusion matrix)\n"
        "  dynaddr convert  --in DIR --out DIR [--to csv|binary]\n"
        "  dynaddr demo [--preset paper|outage|quick] [--threads N]\n"
        "  dynaddr explain --ledger FILE (--client ID | --address A.B.C.D)\n"
        "       why did this client/address change? (from a cause ledger)\n"
        "  dynaddr top --port N [--interval S] [--count N]\n"
        "       live progress/memory table from a --stats-port run\n"
        "  dynaddr [--preset ...] (flags only: shorthand for demo)\n"
        "(simulate/demo: --scale N multiplies the preset's CPE population\n"
        " N-fold for capacity runs — synthetic wide pools, k-root off)\n"
        "observability (any command):\n"
        "  --log-level off|error|warn|info|debug|trace   global log level\n"
        "  --log-module mod:level[,mod:level...]         per-module override\n"
        "  --metrics-out FILE   write metrics (JSON; .csv extension -> CSV)\n"
        "  --trace-out FILE     write Chrome trace_event JSON (Perfetto)\n"
        "  --series-out FILE    record a metrics time series (JSON; .csv -> CSV)\n"
        "  --series-interval S  series cadence in seconds (default 60;\n"
        "                       simulated seconds inside a simulation)\n"
        "  --series-capacity N  series ring capacity in samples (default 8192)\n"
        "  --stats-port N       serve /metrics /series /top /healthz on"
        " 127.0.0.1:N\n"
        "  --mem-report FILE    write the memory-accounting report (JSON:\n"
        "                       accounted vs process RSS, residual explicit)\n"
        "  --profile-hz N       sample registered threads' stacks N times/s\n"
        "  --profile-out FILE   write folded stacks (flame-graph input;\n"
        "                       default profile.folded with --profile-hz)\n"
        "  --flight-recorder[=N]  keep last N log records/thread for crash dumps\n"
        "  --crash-dump-dir DIR   where dynaddr-crash-<pid>.json goes (default .)\n"
        "fault injection (any command; off unless given):\n"
        "  --fault-plan SPEC|@FILE  comma-joined profiles and key=value\n"
        "                       overrides, e.g. lossy,crashy,dhcp.drop=0.3\n"
        "                       (profiles: lossy bursty flaky crashy storms\n"
        "                       exhaustion garbage chaos)\n"
        "  --fault-seed N       override the fault plan's rng seed\n"
        "(--threads: pipeline executors; 0 = hardware concurrency (default),"
        " 1 = single-threaded; results are identical for any value)\n";
    return 2;
}

/// Flags whose value is optional (`--flag` alone means "on, defaults").
bool valueless_ok(const std::string& name) {
    return name == "flight-recorder" || name == "streaming";
}

std::map<std::string, std::string> parse_flags(int argc, char** argv, int from) {
    std::map<std::string, std::string> flags;
    for (int i = from; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) throw Error("bad argument '" + arg + "'");
        // Both --flag=value and --flag value.
        if (const auto eq = arg.find('='); eq != std::string::npos) {
            flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
            continue;
        }
        const std::string name = arg.substr(2);
        // A valueless flag consumes the next argument only when it does
        // not look like another flag.
        if (valueless_ok(name) &&
            (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0)) {
            flags[name] = "";
            continue;
        }
        if (i + 1 >= argc) throw Error("flag '" + arg + "' needs a value");
        flags[name] = argv[++i];
    }
    return flags;
}

/// The live stats endpoint lives for the whole command; destroyed (and
/// its thread joined) when main returns.
std::unique_ptr<obs::StatsServer> stats_server;

/// Builds and installs the process-global fault injector from
/// --fault-plan / --fault-seed. Returns the owning scope (kept alive for
/// the whole command) or nullptr when neither flag was given — in which
/// case every fault gate stays a null check and output is byte-identical
/// to a build without the fault layer.
std::unique_ptr<sim::ScopedFaultInjector> apply_fault_flags(
    const std::map<std::string, std::string>& flags) {
    const auto plan_it = flags.find("fault-plan");
    const auto seed_it = flags.find("fault-seed");
    if (plan_it == flags.end() && seed_it == flags.end()) return nullptr;
    std::string spec = plan_it != flags.end() ? plan_it->second : std::string();
    if (!spec.empty() && spec.front() == '@') {
        std::ifstream in(spec.substr(1));
        if (!in) throw Error("cannot read fault plan file '" + spec.substr(1) + "'");
        std::ostringstream text;
        text << in.rdbuf();
        spec = text.str();
    }
    auto plan = sim::FaultPlan::parse(spec);
    if (seed_it != flags.end()) plan.seed = std::stoull(seed_it->second);
    auto scoped = std::make_unique<sim::ScopedFaultInjector>(plan);
    DYNADDR_LOG(Info, cli, "fault plan active: '", plan.to_string(), "'");
    return scoped;
}

/// Applies the observability flags. Returns after enabling tracing when
/// requested, so spans from the command body are collected. Live
/// features (series recorder, stats server, flight recorder) must be on
/// before the command body so simulations constructed inside it see them.
void apply_obs_flags(const std::map<std::string, std::string>& flags) {
    if (auto it = flags.find("log-level"); it != flags.end()) {
        const auto level = obs::parse_level(it->second);
        if (!level) throw Error("unknown log level '" + it->second + "'");
        obs::set_log_level(*level);
    }
    if (auto it = flags.find("log-module"); it != flags.end())
        obs::apply_module_spec(it->second);
    if (flags.contains("trace-out")) obs::enable_trace();
    if (auto it = flags.find("metrics-out"); it != flags.end())
        obs::set_emergency_metrics_path(it->second);
    if (flags.contains("series-out") || flags.contains("stats-port")) {
        obs::SeriesConfig config;
        if (auto it = flags.find("series-interval"); it != flags.end()) {
            config.interval_seconds = std::stod(it->second);
            if (config.interval_seconds <= 0)
                throw Error("--series-interval must be positive");
        }
        if (auto it = flags.find("series-capacity"); it != flags.end())
            config.capacity = std::stoull(it->second);
        auto& recorder = obs::SeriesRecorder::instance();
        recorder.configure(config);
        recorder.enable();
        recorder.start_wall_sampler();
    }
    if (auto it = flags.find("stats-port"); it != flags.end())
        stats_server = std::make_unique<obs::StatsServer>(
            std::uint16_t(std::stoul(it->second)));
    if (auto it = flags.find("crash-dump-dir"); it != flags.end())
        obs::set_crash_dump_dir(it->second);
    if (auto it = flags.find("flight-recorder"); it != flags.end()) {
        std::size_t ring = 256;
        if (!it->second.empty()) ring = std::stoull(it->second);
        obs::enable_flight_recorder(ring);
    }
    if (auto it = flags.find("profile-hz"); it != flags.end()) {
        const double hz = std::stod(it->second);
        if (hz <= 0) throw Error("--profile-hz must be positive");
        // Main runs the simulation loop — the most interesting thread.
        obs::profiler_register_current_thread("main");
        obs::start_profiler(hz);
    }
}

/// Writes --metrics-out / --trace-out / --series-out files after a
/// successful command.
void write_obs_outputs(const std::map<std::string, std::string>& flags) {
    if (auto it = flags.find("metrics-out"); it != flags.end()) {
        obs::write_metrics_file(it->second);
        obs::mark_metrics_written();
        DYNADDR_LOG(Info, cli, "wrote metrics to ", it->second);
    }
    if (auto it = flags.find("trace-out"); it != flags.end()) {
        std::ofstream out(it->second);
        if (!out) throw Error("cannot open " + it->second + " for writing");
        obs::write_trace_json(out);
        DYNADDR_LOG(Info, cli, "wrote ", obs::trace_event_count(),
                    " trace events to ", it->second);
    }
    if (auto it = flags.find("series-out"); it != flags.end()) {
        auto& recorder = obs::SeriesRecorder::instance();
        recorder.stop_wall_sampler();
        // Runs shorter than one interval still get a closing sample; runs
        // with samples do not get a stray wall-clock timestamp appended.
        if (recorder.samples_taken() == 0) recorder.sample_now();
        recorder.write_file(it->second);
        DYNADDR_LOG(Info, cli, "wrote ", recorder.samples_taken(),
                    " series samples to ", it->second);
    }
    if (auto it = flags.find("mem-report"); it != flags.end()) {
        obs::write_mem_report_file(it->second);
        DYNADDR_LOG(Info, cli, "wrote memory report to ", it->second);
    }
    if (flags.contains("profile-hz") || flags.contains("profile-out")) {
        obs::stop_profiler();
        const auto it = flags.find("profile-out");
        const std::string path =
            it != flags.end() ? it->second : std::string("profile.folded");
        obs::write_profile_file(path);
        DYNADDR_LOG(Info, cli, "wrote ", obs::profiler_samples_taken(),
                    " profile samples (", obs::profiler_samples_missed(),
                    " missed) to ", path);
    }
}

/// Tears down the live observers on every exit path: a still-serving
/// stats thread or a joinable sampler thread must not outlive main.
void shutdown_live_obs() {
    obs::stop_profiler();
    obs::SeriesRecorder::instance().stop_wall_sampler();
    stats_server.reset();
}

isp::ScenarioConfig preset_by_name(const std::string& name) {
    if (name == "paper") return isp::presets::paper_scenario();
    if (name == "outage") return isp::presets::outage_scenario();
    if (name == "quick") return isp::presets::quick_scenario();
    throw Error("unknown preset '" + name + "'");
}

/// Resolves --preset plus the optional --scale capacity multiplier.
isp::ScenarioConfig scenario_from_flags(
    const std::string& preset, const std::map<std::string, std::string>& flags) {
    auto config = preset_by_name(preset);
    if (auto it = flags.find("scale"); it != flags.end())
        config = isp::presets::scaled_scenario(config, std::stoi(it->second));
    return config;
}

std::string month_name(bgp::MonthKey month) {
    char buffer[16];
    std::snprintf(buffer, sizeof buffer, "%04d-%02d", int(month / 12),
                  int(month % 12) + 1);
    return buffer;
}

void write_context(const fs::path& dir, const isp::ScenarioResult& scenario) {
    // Monthly pfx2as files.
    for (const auto month : scenario.prefix_table.snapshot_months()) {
        std::ofstream out(dir / ("pfx2as_" + month_name(month) + ".txt"));
        scenario.prefix_table.dump_pfx2as(out, month);
    }
    // AS registry.
    std::ofstream out(dir / "registry.csv");
    csv::Writer writer(out, {"asn", "name", "country", "continent"});
    for (const auto& info : scenario.registry.all())
        writer.write_row({std::to_string(info.asn), info.name,
                          info.country_code, bgp::continent_code(info.continent)});
}

bgp::PrefixTable load_context_table(const fs::path& dir) {
    bgp::PrefixTable table;
    for (const auto& entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("pfx2as_", 0) != 0 || name.size() < 18) continue;
        const int year = std::stoi(name.substr(7, 4));
        const int month = std::stoi(name.substr(12, 2));
        std::ifstream in(entry.path());
        table.load_pfx2as(in, bgp::month_key(year, month));
    }
    return table;
}

bgp::AsRegistry load_context_registry(const fs::path& dir) {
    bgp::AsRegistry registry;
    const fs::path path = dir / "registry.csv";
    if (!fs::exists(path)) return registry;
    std::ifstream in(path);
    csv::Reader reader(in);
    const auto c_asn = reader.column("asn");
    const auto c_name = reader.column("name");
    const auto c_country = reader.column("country");
    const auto c_continent = reader.column("continent");
    while (auto row = reader.next_row()) {
        bgp::AsInfo info;
        info.asn = std::uint32_t(std::stoul((*row)[c_asn]));
        info.name = (*row)[c_name];
        info.country_code = (*row)[c_country];
        const std::string& code = (*row)[c_continent];
        using bgp::Continent;
        info.continent = code == "NA"   ? Continent::NorthAmerica
                         : code == "AS" ? Continent::Asia
                         : code == "AF" ? Continent::Africa
                         : code == "SA" ? Continent::SouthAmerica
                         : code == "OC" ? Continent::Oceania
                                        : Continent::Europe;
        registry.add(info);
    }
    return registry;
}

core::PipelineConfig pipeline_config(
    const std::map<std::string, std::string>& flags) {
    core::PipelineConfig config;
    if (auto threads = flags.find("threads"); threads != flags.end())
        config.threads = std::stoull(threads->second);
    return config;
}

bool wants(const std::string& list, const std::string& item) {
    if (list == "all") return true;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        auto comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        if (list.substr(pos, comma - pos) == item) return true;
        pos = comma + 1;
    }
    return false;
}

void print_reports(const core::AnalysisResults& results,
                   const bgp::PrefixTable& table, const bgp::AsRegistry& registry,
                   const std::string& report_list) {
    if (wants(report_list, "summary"))
        std::cout << core::render_summary(results) << "\n";
    if (wants(report_list, "table2"))
        std::cout << "Probe filtering (Table 2):\n"
                  << core::render_table2(results.filter) << "\n";
    if (wants(report_list, "table5"))
        std::cout << "Periodic renumbering (Table 5):\n"
                  << core::render_table5(results.periodicity) << "\n";
    if (wants(report_list, "table6"))
        std::cout << "Outage renumbering (Table 6):\n"
                  << core::render_table6(results.cond_prob) << "\n";
    if (wants(report_list, "table7"))
        std::cout << "Prefix changes (Table 7):\n"
                  << core::render_table7(results.prefix_changes) << "\n";
    if (wants(report_list, "causes")) {
        const auto attribution =
            core::attribute_changes(results, table, registry);
        core::record_change_attribution(attribution);
        std::cout << "Change-cause attribution:\n"
                  << core::render_change_attribution(attribution) << "\n";
    }
    if (wants(report_list, "admin")) {
        std::cout << "Administrative renumbering events: "
                  << results.admin_events.size() << "\n";
        for (const auto& event : results.admin_events)
            std::cout << "  AS" << event.asn << " retired "
                      << event.retired_prefix.to_string() << " around "
                      << event.last_departure.to_string().substr(0, 10) << " ("
                      << event.probes_moved << " probes -> "
                      << event.destination_prefix.to_string() << ")\n";
        std::cout << "\n";
    }
}

int cmd_simulate(const std::map<std::string, std::string>& flags) {
    const auto preset_it = flags.find("preset");
    const auto out_it = flags.find("out");
    if (preset_it == flags.end() || out_it == flags.end()) return usage();
    auto config = scenario_from_flags(preset_it->second, flags);
    if (auto seed = flags.find("seed"); seed != flags.end())
        config.seed = std::stoull(seed->second);
    const std::string format =
        flags.contains("format") ? flags.at("format") : std::string("csv");
    if (format != "csv" && format != "binary" && format != "both")
        throw Error("unknown --format '" + format + "'");

    const fs::path dir(out_it->second);
    fs::create_directories(dir);
    // The binary writer rides along as a sink: connection/uptime blocks
    // hit disk while the simulation runs instead of after the drain.
    std::unique_ptr<atlas::BinaryBundleWriter> writer;
    if (format != "csv") {
        writer = std::make_unique<atlas::BinaryBundleWriter>(dir.string());
        config.bundle_sink = writer.get();
    }

    // The cause ledger streams ground-truth records to its own file while
    // the simulation runs; keep_records off keeps it O(1) memory.
    std::unique_ptr<sim::ScopedCauseLedger> ledger_scope;
    std::unique_ptr<sim::CauseSink> ledger_sink;
    if (auto it = flags.find("cause-ledger"); it != flags.end()) {
        sim::CauseLedgerConfig ledger_config;
        ledger_config.keep_records = false;
        ledger_scope = std::make_unique<sim::ScopedCauseLedger>(ledger_config);
        if (fs::path(it->second).extension() == ".csv")
            ledger_sink = std::make_unique<sim::CsvCauseWriter>(it->second);
        else
            ledger_sink = std::make_unique<sim::BinaryCauseWriter>(it->second);
        ledger_scope->ledger().set_sink(ledger_sink.get());
    }

    std::cout << "simulating preset '" << preset_it->second << "' (seed "
              << config.seed << ")...\n";
    const auto scenario = isp::run_scenario(config);
    if (writer) writer->close();
    if (ledger_sink) {
        ledger_sink->close();
        std::cout << "wrote " << ledger_scope->ledger().total_records()
                  << " cause records to " << flags.at("cause-ledger") << "\n";
    }
    if (format != "binary") atlas::write_bundle(dir.string(), scenario.bundle);
    write_context(dir, scenario);
    std::cout << "wrote " << scenario.bundle.connection_log.size()
              << " connection-log rows, " << scenario.bundle.kroot_pings.size()
              << " k-root records, " << scenario.bundle.uptime_records.size()
              << " uptime records, " << scenario.bundle.probes.size()
              << " probes (" << format << ") + IP-to-AS context to "
              << dir.string() << "\n";
    return 0;
}

/// --audit: joins the pipeline's inferred causes against the ledger's
/// ground truth and prints the confusion matrix.
void print_audit(const core::AnalysisResults& results,
                 const bgp::PrefixTable& table, const bgp::AsRegistry& registry,
                 const std::string& ledger_path) {
    sim::CauseDecodeStats stats;
    const auto ledger = sim::read_cause_ledger_file(ledger_path, &stats);
    if (stats.rows_rejected > 0 || stats.blocks_rejected > 0)
        DYNADDR_LOG(Warn, cli, "ledger ", ledger_path, ": dropped ",
                    stats.rows_rejected, " rows, ", stats.blocks_rejected,
                    " blocks");
    const auto audit =
        core::audit_attribution(results, table, registry, ledger);
    core::record_attribution_audit(audit);
    std::cout << "Attribution audit (vs " << ledger_path << "):\n"
              << core::render_attribution_audit(audit) << "\n";
}

int cmd_analyze(const std::map<std::string, std::string>& flags) {
    const auto data_it = flags.find("data");
    if (data_it == flags.end()) return usage();
    const fs::path dir(data_it->second);
    const std::string report_list =
        flags.contains("report") ? flags.at("report") : std::string("all");

    const auto table = load_context_table(dir);
    const auto registry = load_context_registry(dir);
    if (table.snapshot_count() == 0)
        DYNADDR_LOG(Warn, cli, "no pfx2as_YYYY-MM.txt files in ", dir.string(),
                    "; AS-level analyses will be empty");

    if (flags.contains("streaming") &&
        atlas::binary_bundle_present(dir.string())) {
        // Probe-by-probe ingestion: O(probes) memory, byte-identical
        // results to the batch path below.
        core::StreamingPipeline::Options options;
        options.config = pipeline_config(flags);
        core::StreamingPipeline pipeline(table, registry, options);
        pipeline.open();
        core::feed_binary_bundle(pipeline, dir.string());
        const auto results = pipeline.finish();
        DYNADDR_LOG(Info, cli, "streamed binary bundle: ",
                    pipeline.probes_seen(), " probes, peak ",
                    pipeline.peak_buffered_records(), " buffered records");
        print_reports(results, table, registry, report_list);
        if (auto it = flags.find("audit"); it != flags.end())
            print_audit(results, table, registry, it->second);
        return 0;
    }
    if (flags.contains("streaming"))
        DYNADDR_LOG(Warn, cli, "--streaming needs a binary bundle in ",
                    dir.string(), "; falling back to the batch reader");

    const auto bundle = atlas::read_bundle_auto(dir.string());
    core::AnalysisPipeline pipeline(pipeline_config(flags));
    const auto results = pipeline.run(bundle, table, registry);
    print_reports(results, table, registry, report_list);
    if (auto it = flags.find("audit"); it != flags.end())
        print_audit(results, table, registry, it->second);
    return 0;
}

int cmd_convert(const std::map<std::string, std::string>& flags) {
    const auto in_it = flags.find("in");
    const auto out_it = flags.find("out");
    if (in_it == flags.end() || out_it == flags.end()) return usage();
    const fs::path in_dir(in_it->second);
    const fs::path out_dir(out_it->second);
    const bool source_binary = atlas::binary_bundle_present(in_dir.string());
    std::string to = flags.contains("to")
                         ? flags.at("to")
                         : std::string(source_binary ? "csv" : "binary");
    if (to != "csv" && to != "binary")
        throw Error("unknown --to '" + to + "'");

    auto bundle = atlas::read_bundle_auto(in_dir.string());
    // Probe-grouped, time-sorted order is what the streaming reader's
    // ordering contract wants; CSV bundles from old simulate runs already
    // have it, but normalizing here keeps convert idempotent either way.
    bundle.sort();
    fs::create_directories(out_dir);
    if (to == "binary")
        atlas::write_binary_bundle(out_dir.string(), bundle);
    else
        atlas::write_bundle(out_dir.string(), bundle);

    // Carry the IP-to-AS context along so the output stays analyzable.
    if (fs::exists(in_dir) && !fs::equivalent(in_dir, out_dir)) {
        for (const auto& entry : fs::directory_iterator(in_dir)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind("pfx2as_", 0) == 0 || name == "registry.csv")
                fs::copy_file(entry.path(), out_dir / name,
                              fs::copy_options::overwrite_existing);
        }
    }
    std::cout << "converted " << (source_binary ? "binary" : "csv")
              << " bundle in " << in_dir.string() << " -> " << to << " in "
              << out_dir.string() << " ("
              << bundle.connection_log.size() << " connection-log rows, "
              << bundle.kroot_pings.size() << " k-root, "
              << bundle.uptime_records.size() << " uptime, "
              << bundle.probes.size() << " probes)\n";
    return 0;
}

/// `dynaddr explain`: why did this client (or address) change? Prints the
/// causal chain of every matching ledger record, newest last.
int cmd_explain(const std::map<std::string, std::string>& flags) {
    const auto ledger_it = flags.find("ledger");
    const auto client_it = flags.find("client");
    const auto address_it = flags.find("address");
    if (ledger_it == flags.end() ||
        (client_it == flags.end()) == (address_it == flags.end()))
        return usage();

    std::optional<std::uint64_t> client;
    std::optional<net::IPv4Address> address;
    if (client_it != flags.end()) {
        client = std::stoull(client_it->second);
    } else {
        address = net::IPv4Address::parse(address_it->second);
        if (!address)
            throw Error("bad --address '" + address_it->second + "'");
    }

    sim::CauseDecodeStats stats;
    const auto records = sim::read_cause_ledger_file(ledger_it->second, &stats);
    if (stats.rows_rejected > 0 || stats.blocks_rejected > 0)
        std::cerr << "warning: dropped " << stats.rows_rejected << " rows, "
                  << stats.blocks_rejected << " damaged blocks\n";

    std::size_t matched = 0;
    for (const auto& record : records) {
        if (client && record.client != *client) continue;
        if (address && record.old_addr != *address &&
            record.new_addr != *address)
            continue;
        ++matched;
        std::cout << record.at.to_string() << "  client " << record.client
                  << " (probe " << record.probe << "): "
                  << record.old_addr.to_string() << " -> "
                  << record.new_addr.to_string() << "\n"
                  << "    because: " << sim::cause_kind_name(record.kind)
                  << " via " << sim::cause_site_name(record.site)
                  << "\n    root event " << record.root_at.to_string();
        if (record.root_duration > net::Duration::seconds(0))
            std::cout << " (lasting " << record.root_duration.to_string()
                      << ")";
        std::cout << ", address lost " << record.lost_at.to_string() << "\n";
    }
    std::cout << matched << " change(s) of "
              << (client ? "client " + std::to_string(*client)
                         : "address " + address->to_string())
              << " in " << records.size() << " ledger records\n";
    return 0;
}

/// Hidden subcommand (not in usage): deliberately dies so the flight
/// recorder's crash path can be exercised end to end from a test. The
/// mode selects how: segv (default), abort, or terminate.
int cmd_crash_test(const std::map<std::string, std::string>& flags) {
    if (!obs::flight_recorder_enabled()) obs::enable_flight_recorder();
    obs::counter("cli.crash_test_runs").inc();
    for (int i = 0; i < 8; ++i)
        DYNADDR_LOG(Debug, cli, "crash-test breadcrumb ", i);
    DYNADDR_LOG(Info, cli, "crash-test: dying now");
    const std::string mode =
        flags.contains("mode") ? flags.at("mode") : std::string("segv");
    if (mode == "abort") std::abort();
    if (mode == "terminate") std::terminate();
    volatile int* null_pointer = nullptr;
    *null_pointer = 42;
    return 0;  // unreachable
}

/// Minimal loopback HTTP/1.0 GET for `dynaddr top`: returns the response
/// body, or nullopt when the server is unreachable / the reply is not 200.
std::optional<std::string> http_get_body(std::uint16_t port,
                                         const std::string& path) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return std::nullopt;
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof address) !=
        0) {
        ::close(fd);
        return std::nullopt;
    }
    const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
    std::size_t sent = 0;
    while (sent < request.size()) {
        const auto wrote = ::send(fd, request.data() + sent,
                                  request.size() - sent, MSG_NOSIGNAL);
        if (wrote <= 0) break;
        sent += std::size_t(wrote);
    }
    std::string response;
    char buffer[4096];
    for (;;) {
        const auto got = ::recv(fd, buffer, sizeof buffer, 0);
        if (got <= 0) break;
        response.append(buffer, std::size_t(got));
    }
    ::close(fd);
    if (response.rfind("HTTP/1.0 200", 0) != 0 &&
        response.rfind("HTTP/1.1 200", 0) != 0)
        return std::nullopt;
    const auto split = response.find("\r\n\r\n");
    if (split == std::string::npos) return std::nullopt;
    return response.substr(split + 4);
}

std::string human_bytes(double bytes) {
    static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int unit = 0;
    while (bytes >= 1024.0 && unit < 4) {
        bytes /= 1024.0;
        ++unit;
    }
    char out[32];
    std::snprintf(out, sizeof out, unit == 0 ? "%.0f %s" : "%.1f %s", bytes,
                  units[unit]);
    return out;
}

std::string human_duration(double seconds) {
    if (seconds < 0) return "-";
    return net::Duration::seconds(std::int64_t(seconds)).to_string();
}

/// Renders one /top payload as the `dynaddr top` table.
void render_top(std::ostream& out, const obs::JsonValue& top,
                std::uint16_t port) {
    out << "dynaddr top — 127.0.0.1:" << port << "\n\n";
    if (const obs::JsonValue* p = top.find("progress")) {
        const bool active = p->find("plan_active") != nullptr &&
                            p->find("plan_active")->boolean;
        out << "progress   " << (active ? "running" : "idle/finished") << "\n"
            << "  sim time   " << p->string_or("sim_now", "-") << "  ("
            << int(p->number_or("fraction_done", 0) * 100 + 0.5)
            << "% of plan, horizon " << p->string_or("plan_end", "-") << ")\n"
            << "  events     "
            << std::uint64_t(p->number_or("events_executed", 0)) << "  ("
            << std::uint64_t(p->number_or("events_per_s", 0)) << "/s, "
            << "sim rate " << std::uint64_t(p->number_or("sim_rate", 0))
            << "x)\n"
            << "  eta        " << human_duration(p->number_or("eta_s", -1))
            << "\n";
        if (p->number_or("sealed_probe", -1) >= 0)
            out << "  sealed     probe "
                << std::int64_t(p->number_or("sealed_probe", -1)) << "\n";
    }
    if (const obs::JsonValue* m = top.find("memory")) {
        out << "memory     rss "
            << human_bytes(m->number_or("process_rss_bytes", 0)) << ", peak "
            << human_bytes(m->number_or("process_peak_rss_bytes", 0))
            << ", accounted " << human_bytes(m->number_or("accounted_bytes", 0))
            << ", residual " << human_bytes(m->number_or("residual_bytes", 0))
            << "\n";
        if (const obs::JsonValue* subsystems = m->find("subsystems")) {
            std::size_t shown = 0;
            for (const auto& row : subsystems->array) {
                if (++shown > 8) break;  // already sorted by bytes, desc
                char line[128];
                std::snprintf(line, sizeof line, "  %-24s %12s %12.0f items\n",
                              row.string_or("name", "?").c_str(),
                              human_bytes(row.number_or("bytes", 0)).c_str(),
                              row.number_or("items", 0));
                out << line;
            }
        }
    }
}

/// Renders one /causes payload (live cause-ledger counters) under the
/// /top view. Quiet when no ledger is running (empty object).
void render_causes(std::ostream& out, const obs::JsonValue& causes) {
    if (causes.object.empty()) return;
    out << "causes     " << std::uint64_t(causes.number_or("records", 0))
        << " records\n";
    for (const auto& [name, value] : causes.object) {
        if (name == "records" || value.type != obs::JsonValue::Type::Number ||
            value.number == 0)
            continue;
        char line[96];
        std::snprintf(line, sizeof line, "  %-24s %12.0f\n", name.c_str(),
                      value.number);
        out << line;
    }
}

int cmd_top(const std::map<std::string, std::string>& flags) {
    const auto port_it = flags.find("port");
    if (port_it == flags.end()) return usage();
    const auto port = std::uint16_t(std::stoul(port_it->second));
    const double interval =
        flags.contains("interval") ? std::stod(flags.at("interval")) : 2.0;
    const long count =
        flags.contains("count") ? std::stol(flags.at("count")) : 0;  // 0 = on

    bool ever_polled = false;
    for (long i = 0; count == 0 || i < count; ++i) {
        if (i > 0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(interval));
        const auto body = http_get_body(port, "/top");
        if (!body) {
            if (ever_polled) {
                std::cout << "run ended (stats endpoint gone)\n";
                return 0;
            }
            std::cerr << "error: no stats endpoint on 127.0.0.1:" << port
                      << " (start the run with --stats-port " << port
                      << ")\n";
            return 1;
        }
        const auto top = obs::json_parse(*body);
        if (!top) {
            std::cerr << "error: malformed /top payload\n";
            return 1;
        }
        // Self-updating display only when looping: clear + home between
        // frames; a single shot (--count 1) stays pipe-friendly.
        if (count != 1) std::cout << "\x1b[H\x1b[2J";
        render_top(std::cout, *top, port);
        if (const auto causes_json = http_get_body(port, "/causes"))
            if (const auto causes = obs::json_parse(*causes_json))
                render_causes(std::cout, *causes);
        std::cout.flush();
        ever_polled = true;
    }
    return 0;
}

int cmd_demo(const std::map<std::string, std::string>& flags) {
    const std::string preset =
        flags.contains("preset") ? flags.at("preset") : std::string("quick");
    const auto config = scenario_from_flags(preset, flags);
    std::cout << "simulating " << preset << " preset...\n";
    const auto scenario = isp::run_scenario(config);
    core::AnalysisPipeline pipeline(pipeline_config(flags));
    const auto results = pipeline.run(scenario.bundle, scenario.prefix_table,
                                      scenario.registry, config.window);
    print_reports(results, scenario.prefix_table, scenario.registry, "all");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc < 2) return usage();
        // Flags-only invocation (e.g. `dynaddr --preset quick`) is
        // shorthand for the demo command.
        std::string command = argv[1];
        int flags_from = 2;
        if (command.rfind("--", 0) == 0) {
            command = "demo";
            flags_from = 1;
        }
        const auto flags = parse_flags(argc, argv, flags_from);
        apply_obs_flags(flags);
        const auto fault_scope = apply_fault_flags(flags);
        int status;
        if (command == "simulate") status = cmd_simulate(flags);
        else if (command == "analyze") status = cmd_analyze(flags);
        else if (command == "convert") status = cmd_convert(flags);
        else if (command == "demo") status = cmd_demo(flags);
        else if (command == "explain") status = cmd_explain(flags);
        else if (command == "crash-test") status = cmd_crash_test(flags);
        else if (command == "top") status = cmd_top(flags);
        else return usage();
        if (status == 0) write_obs_outputs(flags);
        shutdown_live_obs();
        return status;
    } catch (const std::exception& error) {
        std::cerr << "error: " << error.what() << "\n";
        shutdown_live_obs();
        return 1;
    }
}

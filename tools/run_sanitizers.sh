#!/usr/bin/env bash
# Builds the tree under ThreadSanitizer and ASan/UBSan and runs the tier-1
# test suite under each, so the pipeline's sharded concurrency stays honest.
#
#   tools/run_sanitizers.sh [thread|address ...] [options]
#
# Options:
#   --targets a,b,c     build only these CMake targets (default: everything)
#   --tests-regex RE    run only ctest cases matching RE (default: all)
#
# The restricted form backs the `sanitize_smoke` ctest target, which puts
# just the observability tests (lock-free flight recorder, stats-server
# thread, series recorder) under TSan on every test run. Exits non-zero on
# the first sanitizer failure. Build trees live in build-tsan/ and
# build-asan/ next to the regular build/.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 2)
sanitizers=()
targets=""
tests_regex=""
while [ $# -gt 0 ]; do
  case "$1" in
    --targets)     targets="$2"; shift 2 ;;
    --tests-regex) tests_regex="$2"; shift 2 ;;
    thread|address) sanitizers+=("$1"); shift ;;
    *) echo "unknown argument '$1' (want thread|address|--targets|--tests-regex)" >&2
       exit 2 ;;
  esac
done
[ ${#sanitizers[@]} -eq 0 ] && sanitizers=(thread address)

for sanitizer in "${sanitizers[@]}"; do
  case "$sanitizer" in
    thread)  dir=build-tsan ;;
    address) dir=build-asan ;;
  esac
  echo "=== ${sanitizer}-sanitized build in ${dir}/ ==="
  cmake -B "$dir" -S . -DDYNADDR_SANITIZE="$sanitizer" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  if [ -n "$targets" ]; then
    # shellcheck disable=SC2086  # comma list intentionally word-split
    cmake --build "$dir" -j "$jobs" --target ${targets//,/ }
  else
    cmake --build "$dir" -j "$jobs"
  fi
  if [ -n "$tests_regex" ]; then
    ctest --test-dir "$dir" --output-on-failure -j "$jobs" -R "$tests_regex"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  fi
  echo "=== ${sanitizer} sanitizer: clean ==="
done

#!/usr/bin/env bash
# Builds the tree under ThreadSanitizer and ASan/UBSan and runs the tier-1
# test suite under each, so the pipeline's sharded concurrency stays honest.
#
#   tools/run_sanitizers.sh [thread|address ...]   (default: both)
#
# Exits non-zero on the first sanitizer failure. Build trees live in
# build-tsan/ and build-asan/ next to the regular build/.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 2)
sanitizers=("$@")
[ ${#sanitizers[@]} -eq 0 ] && sanitizers=(thread address)

for sanitizer in "${sanitizers[@]}"; do
  case "$sanitizer" in
    thread)  dir=build-tsan ;;
    address) dir=build-asan ;;
    *) echo "unknown sanitizer '$sanitizer' (want thread|address)" >&2; exit 2 ;;
  esac
  echo "=== ${sanitizer}-sanitized build in ${dir}/ ==="
  cmake -B "$dir" -S . -DDYNADDR_SANITIZE="$sanitizer" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  echo "=== ${sanitizer} sanitizer: clean ==="
done

#!/usr/bin/env python3
"""Compare two BENCH_*.json reports produced by perf_micro --bench_report.

Prints a per-benchmark delta table (matched by benchmark name). Exits
non-zero only when a benchmark on the --watch allowlist regresses by more
than --fail-above percent in real_time; with no allowlist the run is
purely informational.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [options]
  bench_compare.py BASELINE.json --run path/to/perf_micro [options]

With --run, the current report is generated on the spot by invoking the
benchmark binary (optionally restricted via --filter) with a temporary
--bench_report path.

Options:
  --fail-above PCT   regression threshold in percent (default: 10)
  --watch NAME       benchmark name that gates the exit code; repeatable
  --filter REGEX     --benchmark_filter passed to --run binary
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Times are stored in each entry's own time_unit; comparisons are
# ratios of same-name entries, so units cancel as long as a benchmark
# keeps its unit between runs (ours do). Normalize anyway for display.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_report(path):
    # Prefer cpu_time when the report carries it: these are single-threaded
    # microbenches, so CPU time equals real time on an idle box but stays
    # stable when the CI host co-schedules other work (wall clock can
    # double under load while cpu_time moves by ~1%). Older reports lack
    # the field and fall back to real_time.
    with open(path) as handle:
        entries = json.load(handle)
    report = {}
    for entry in entries:
        time = entry.get("cpu_time") or entry["real_time"]
        report[entry["name"]] = time * _UNIT_NS.get(entry.get("time_unit", "ns"), 1.0)
    return report


def format_time(nanos):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if nanos >= scale:
            return "%.3g %s" % (nanos / scale, unit)
    return "%.3g ns" % nanos


def run_fresh_report(binary, bench_filter):
    handle, path = tempfile.mkstemp(suffix=".json", prefix="bench_compare_")
    os.close(handle)
    os.unlink(path)  # the collector merges with an existing file; start clean
    command = [binary, "--bench_report=" + path]
    if bench_filter:
        command.append("--benchmark_filter=" + bench_filter)
    try:
        subprocess.run(command, check=True)
        return load_report(path)
    finally:
        if os.path.exists(path):
            os.unlink(path)


def main():
    parser = argparse.ArgumentParser(
        description="diff two perf_micro bench reports")
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--run", metavar="BINARY",
                        help="generate the current report by running BINARY")
    parser.add_argument("--filter", default=None,
                        help="--benchmark_filter for --run")
    parser.add_argument("--fail-above", type=float, default=10.0,
                        metavar="PCT", help="regression threshold (percent)")
    parser.add_argument("--watch", action="append", default=[],
                        metavar="NAME",
                        help="benchmark whose regression fails the run")
    args = parser.parse_args()
    if bool(args.current) == bool(args.run):
        parser.error("need exactly one of CURRENT.json or --run BINARY")

    baseline = load_report(args.baseline)
    current = run_fresh_report(args.run, args.filter) if args.run \
        else load_report(args.current)

    names = [n for n in current if n in baseline]
    only_base = sorted(set(baseline) - set(current))
    only_curr = sorted(set(current) - set(baseline))

    width = max((len(n) for n in names), default=20)
    print("%-*s %12s %12s %9s" % (width, "benchmark", "baseline",
                                  "current", "delta"))
    regressions = []
    for name in names:
        before, after = baseline[name], current[name]
        delta = (after - before) / before * 100.0 if before else 0.0
        gated = not args.watch or name in args.watch
        flag = ""
        if delta > args.fail_above:
            flag = "  REGRESSION" if gated and args.watch else "  (slower)"
            if gated and args.watch:
                regressions.append((name, delta))
        print("%-*s %12s %12s %+8.1f%%%s" %
              (width, name, format_time(before), format_time(after),
               delta, flag))
    for name in only_base:
        print("%-*s %12s %12s     (not re-run)" %
              (width, name, format_time(baseline[name]), "-"))
    for name in only_curr:
        print("%-*s %12s %12s     (new)" %
              (width, name, "-", format_time(current[name])))

    missing_watch = [n for n in args.watch
                     if n not in baseline or n not in current]
    for name in missing_watch:
        print("watched benchmark %s missing from %s" %
              (name, "baseline" if name not in baseline else "current"),
              file=sys.stderr)

    if regressions or missing_watch:
        for name, delta in regressions:
            print("FAIL: %s regressed %.1f%% (> %.1f%%)" %
                  (name, delta, args.fail_above), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

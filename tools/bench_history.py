#!/usr/bin/env python3
"""Plot per-benchmark trajectories across all committed BENCH_*.json files.

Each committed report is one point in time; for every benchmark name this
prints the real_time trend oldest -> newest as a unicode sparkline plus
the first/last values and the overall delta. Purely informational — the
gate against regressions is bench_compare.py; this answers the slower
question "has this bench been drifting across PRs?".

Usage:
  bench_history.py [REPO_DIR] [--filter SUBSTRING] [--max-names N]

REPO_DIR defaults to the repository root containing the BENCH files
(the parent of this script's directory).
"""

import argparse
import glob
import json
import os
import sys

SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values):
    """Unicode sparkline over the value range; '·' marks missing points."""
    present = [v for v in values if v is not None]
    if not present:
        return ""
    low, high = min(present), max(present)
    span = high - low
    line = []
    for value in values:
        if value is None:
            line.append("·")
        elif span <= 0:
            line.append(SPARK_LEVELS[0])
        else:
            index = int((value - low) / span * (len(SPARK_LEVELS) - 1))
            line.append(SPARK_LEVELS[index])
    return "".join(line)


def load_reports(repo_dir):
    """[(basename, {bench name -> entry})] sorted by filename (dated)."""
    reports = []
    for path in sorted(glob.glob(os.path.join(repo_dir, "BENCH_*.json"))):
        try:
            with open(path) as handle:
                entries = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: skipping {path}: {error}", file=sys.stderr)
            continue
        by_name = {e["name"]: e for e in entries if "name" in e}
        reports.append((os.path.basename(path), by_name))
    return reports


def format_time(value, unit):
    return f"{value:.4g} {unit}" if value is not None else "-"


def main():
    parser = argparse.ArgumentParser(
        description="sparkline real_time trajectories over BENCH_*.json")
    parser.add_argument("repo_dir", nargs="?",
                        default=os.path.dirname(
                            os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--filter", default="",
                        help="only benchmarks whose name contains this")
    parser.add_argument("--max-names", type=int, default=0,
                        help="limit rows (0 = all)")
    args = parser.parse_args()

    reports = load_reports(args.repo_dir)
    if len(reports) < 2:
        print(f"need at least two BENCH_*.json in {args.repo_dir} "
              f"(found {len(reports)}) — nothing to trend")
        return 0

    print("history: " + " -> ".join(name for name, _ in reports))
    names = sorted({name for _, by_name in reports for name in by_name
                    if args.filter in name})
    if args.max_names > 0:
        names = names[:args.max_names]

    width = max((len(name) for name in names), default=0)
    for name in names:
        series = []
        unit = "?"
        for _, by_name in reports:
            entry = by_name.get(name)
            series.append(entry["real_time"] if entry else None)
            if entry:
                unit = entry.get("time_unit", "?")
        present = [v for v in series if v is not None]
        first, last = present[0], present[-1]
        delta = ((last - first) / first * 100.0) if first > 0 else 0.0
        print(f"  {name:<{width}}  {sparkline(series)}  "
              f"{format_time(first, unit)} -> {format_time(last, unit)}  "
              f"({delta:+.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Line-coverage report for the src/ tree.
#
#   tools/coverage.sh [ctest -R regex]
#
# Builds a gcov-instrumented tree in build-cov/ (-DDYNADDR_COVERAGE=ON),
# runs the test suite (optionally restricted by regex), and prints per-file
# and total line coverage over src/. Uses gcovr or lcov when available;
# otherwise falls back to raw `gcov --json-format` plus a small aggregator,
# which is all the stock toolchain needs. The nested-sanitizer smoke test
# is excluded — rebuilding TSan trees tells us nothing about coverage.
set -euo pipefail
cd "$(dirname "$0")/.."
root=$(pwd)
build=build-cov
jobs=$(nproc 2>/dev/null || echo 2)
tests_regex="${1:-}"

cmake -B "$build" -S . -DDYNADDR_COVERAGE=ON > /dev/null
cmake --build "$build" -j "$jobs"

find "$build" -name '*.gcda' -delete
if [ -n "$tests_regex" ]; then
  ctest --test-dir "$build" -j "$jobs" -E sanitize_smoke -R "$tests_regex" \
        --output-on-failure
else
  ctest --test-dir "$build" -j "$jobs" -E sanitize_smoke --output-on-failure
fi

if command -v gcovr > /dev/null; then
  gcovr --root "$root" --filter 'src/' --print-summary
  exit 0
fi
if command -v lcov > /dev/null; then
  lcov --capture --directory "$build" --output-file "$build/coverage.info" \
       --include "$root/src/*" > /dev/null
  lcov --summary "$build/coverage.info"
  exit 0
fi

# Raw gcov: emit one JSON blob per object file, then merge. A source line
# counts as covered when any object saw it execute.
covdir="$build/coverage"
rm -rf "$covdir" && mkdir -p "$covdir"
(
  cd "$covdir"
  find .. -name '*.gcda' -print0 |
    xargs -0 -r gcov --json-format --preserve-paths > /dev/null 2>&1 || true
)
python3 - "$root" "$covdir" <<'PY'
import gzip, json, os, sys
from collections import defaultdict

root, covdir = sys.argv[1], sys.argv[2]
# (file, line) -> max execution count across all objects
counts = defaultdict(int)
for name in os.listdir(covdir):
    if not name.endswith('.gcov.json.gz'):
        continue
    with gzip.open(os.path.join(covdir, name), 'rt') as fh:
        blob = json.load(fh)
    for unit in blob.get('files', []):
        path = os.path.normpath(os.path.join(root, unit['file']))
        rel = os.path.relpath(path, root)
        if not rel.startswith('src' + os.sep):
            continue
        for line in unit.get('lines', []):
            key = (rel, line['line_number'])
            counts[key] = max(counts[key], line['count'])

per_file = defaultdict(lambda: [0, 0])  # file -> [covered, total]
for (rel, _line), count in counts.items():
    per_file[rel][1] += 1
    if count > 0:
        per_file[rel][0] += 1

if not per_file:
    sys.exit('no gcov data found under ' + covdir)

width = max(len(f) for f in per_file)
covered_total = lines_total = 0
for rel in sorted(per_file):
    covered, total = per_file[rel]
    covered_total += covered
    lines_total += total
    print(f'{rel:<{width}}  {covered:>6}/{total:<6}  {100.0 * covered / total:6.1f}%')
print('-' * (width + 25))
print(f'{"TOTAL":<{width}}  {covered_total:>6}/{lines_total:<6}  '
      f'{100.0 * covered_total / lines_total:6.1f}%')
PY

// Figure 9 — renumbering likelihood vs outage duration, LGI vs Orange.
//
// LGI behaves like textbook DHCP: almost no renumbering for sub-hour
// outages, a rising fraction as outages outlive the lease, and a majority
// renumbered beyond a day. Orange renumbers even on the shortest outages
// (PPPoE: any reconnect draws a fresh address).

#include "exp_common.hpp"

namespace {

void print_bins(const char* title, const dynaddr::core::DurationBinAnalysis& bins) {
    std::cout << title << "\n";
    std::vector<std::vector<std::string>> rows;
    for (std::size_t b = 0; b < bins.total.bin_count(); ++b) {
        rows.push_back({bins.total.bin_label(b),
                        dynaddr::core::fmt(bins.total.bin_weight(b), 0),
                        dynaddr::core::fmt(bins.renumbered.bin_weight(b), 0),
                        dynaddr::core::fmt(bins.percent_renumbered(b), 1) + "%"});
    }
    std::cout << dynaddr::chart::render_table(
        {"Outage duration", "Outages", "Renumbered", "%"}, rows);
    std::vector<std::tuple<std::string, double, double>> fractions;
    for (std::size_t b = 0; b < bins.total.bin_count(); ++b)
        if (bins.total.bin_weight(b) > 0)
            fractions.emplace_back(bins.total.bin_label(b),
                                   bins.renumbered.bin_weight(b),
                                   bins.total.bin_weight(b));
    std::cout << dynaddr::chart::render_fraction_chart(fractions, 40) << "\n";
}

}  // namespace

int main() {
    using namespace dynaddr;
    bench::print_header("Figure 9", "Renumbering likelihood vs outage duration");

    auto experiment = bench::run_experiment(isp::presets::outage_scenario());
    const auto& results = experiment.results;

    const auto lgi = core::duration_bins_for_as(results, 6830);
    const auto orange = core::duration_bins_for_as(results, 3215);
    print_bins("LGI (AS6830) — network + power outages:", lgi);
    print_bins("Orange (AS3215) — network + power outages:", orange);

    bench::print_paper_note(
        "LGI: <3% of sub-hour outages renumber; >25% at 12 h; the majority "
        "of multi-day outages do — consistent with a few-hour DHCP lease "
        "plus pool churn. Orange: 91% of sub-5-minute outages renumber, "
        ">75% up to 3 h, ~50% for 3 h-3 d (CPEs that do not renumber every "
        "time), and nearly all beyond 3 days.");
    bench::print_footer(experiment);
    return 0;
}

// Table 7 — do address changes cross prefixes?
//
// For every within-AS address change of a single-AS probe, compare the
// routed BGP prefix (via the monthly IP-to-AS table), the enclosing /16
// and the enclosing /8 of the old and new address.

#include "exp_common.hpp"

int main() {
    using namespace dynaddr;
    bench::print_header("Table 7", "Address changes across BGP / /16 / /8 prefixes");

    auto experiment = bench::run_experiment(isp::presets::paper_scenario());
    std::cout << core::render_table7(experiment.results.prefix_changes) << "\n";

    bench::print_paper_note(
        "All: 166,644 changes, 48.9% diff BGP / 47.7% diff /16 / 33.5% diff "
        "/8. Orange 68/67/53, LGI 56/55/45, BT 44/68/44 (note /16 > BGP: "
        "large aggregates), DTAG 24/28/24, Verizon 23/23/20, Comcast "
        "37/36/31, Proximus 49/53/45, Telecom Italia 85/88/47, Ziggo "
        "35/43/31, Virgin Media 84/89/71. Nearly half of all changes leave "
        "the BGP prefix; even /8 blacklisting misses a third.");
    bench::print_footer(experiment);
    return 0;
}

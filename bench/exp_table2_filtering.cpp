// Table 2 — probe filtering census.
//
// The paper starts from 10,977 probes and discards those whose address
// alternation does not indicate dynamic reassignment. Our world is built
// at roughly 1:10 of the paper's special populations plus the full CPE
// fleet, so absolute counts differ; what must match is that every planted
// behaviour lands in its intended bin and that the analyzable remainder
// splits into single-AS and multi-AS groups.

#include "exp_common.hpp"

int main() {
    using namespace dynaddr;
    bench::print_header("Table 2", "Probe filtering census");

    auto experiment = bench::run_experiment(isp::presets::paper_scenario());
    const auto& results = experiment.results;

    std::cout << core::render_table2(results.filter) << "\n";
    std::cout << "Analyzable (geography):  "
              << results.filter.count(core::ProbeCategory::Analyzable) << "\n";
    std::cout << "  Multiple ASes:         " << results.mapping.multi_as.size()
              << "\n";
    std::cout << "Analyzable (AS-level):   " << results.mapping.single_as.size()
              << "\n";

    bench::print_paper_note(
        "10,977 total; 3,073 never changed; 3,728 dual stack; 237 IPv6; 174 "
        "tagged; 511 alternating-multihomed; 216 testing-address-only; 3,038 "
        "analyzable (geography); 766 multi-AS; 2,272 analyzable (AS-level). "
        "Our populations are ~1:10 for specials and ~1:3 for CPE probes.");
    bench::print_footer(experiment);
    return 0;
}

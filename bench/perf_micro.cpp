// Google-benchmark microbenchmarks for the performance-critical pieces:
// longest-prefix match, log parsing, change extraction, TTF computation,
// the event engine, pool allocation, and the end-to-end pipeline.

#include <benchmark/benchmark.h>

#include <sstream>

#include "core/pipeline.hpp"
#include "dhcp/wire.hpp"
#include "netcore/ipv6.hpp"
#include "netcore/parallel.hpp"
#include "isp/presets.hpp"

namespace {

using namespace dynaddr;

// -- radix trie LPM ----------------------------------------------------------

bgp::RadixTrie build_trie(int routes) {
    rng::Stream rng(1);
    bgp::RadixTrie trie;
    for (int i = 0; i < routes; ++i) {
        const net::IPv4Address base{std::uint32_t(rng.next_u64())};
        trie.insert(net::IPv4Prefix{base, int(rng.uniform_int(8, 24))},
                    std::uint32_t(i));
    }
    return trie;
}

void BM_TrieLongestMatch(benchmark::State& state) {
    const auto trie = build_trie(int(state.range(0)));
    rng::Stream rng(2);
    std::vector<net::IPv4Address> addresses;
    for (int i = 0; i < 4096; ++i)
        addresses.emplace_back(std::uint32_t(rng.next_u64()));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(trie.longest_match(addresses[i & 4095]));
        ++i;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_TrieLongestMatch)->Arg(1000)->Arg(10000)->Arg(100000);

// -- connection-log CSV parse -------------------------------------------------

void BM_ConnectionLogParse(benchmark::State& state) {
    // Build a realistic CSV once.
    std::vector<atlas::ConnectionLogEntry> entries;
    rng::Stream rng(3);
    net::TimePoint t = net::TimePoint::from_date(2015, 1, 1);
    for (int i = 0; i < 10000; ++i) {
        atlas::ConnectionLogEntry e;
        e.probe = atlas::ProbeId(i % 100);
        e.start = t;
        e.end = t + net::Duration::hours(23);
        e.address = atlas::PeerAddress::ipv4(
            net::IPv4Address{std::uint32_t(rng.next_u64())});
        entries.push_back(e);
        t += net::Duration::minutes(7);
    }
    std::stringstream buffer;
    atlas::write_connection_log_csv(buffer, entries);
    const std::string csv = buffer.str();
    for (auto _ : state) {
        std::istringstream in(csv);
        benchmark::DoNotOptimize(atlas::read_connection_log_csv(in));
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) * 10000);
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(csv.size()));
}
BENCHMARK(BM_ConnectionLogParse);

// -- change extraction + TTF --------------------------------------------------

core::ProbeLog synthetic_log(int entries) {
    core::ProbeLog log;
    log.probe = 1;
    rng::Stream rng(4);
    net::TimePoint t = net::TimePoint::from_date(2015, 1, 1);
    for (int i = 0; i < entries; ++i) {
        atlas::ConnectionLogEntry e;
        e.probe = 1;
        e.start = t;
        e.end = t + net::Duration::hours(23);
        e.address = atlas::PeerAddress::ipv4(
            net::IPv4Address{std::uint32_t(rng.uniform_int(1, 1 << 20))});
        log.entries.push_back(e);
        t += net::Duration::hours(24);
    }
    return log;
}

void BM_ExtractChanges(benchmark::State& state) {
    const auto log = synthetic_log(365);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::extract_changes(log));
    state.SetItemsProcessed(std::int64_t(state.iterations()) * 365);
}
BENCHMARK(BM_ExtractChanges);

void BM_TotalTimeFraction(benchmark::State& state) {
    const auto changes = core::extract_changes(synthetic_log(365));
    for (auto _ : state) {
        core::TotalTimeFraction ttf;
        ttf.add_all(changes.spans);
        benchmark::DoNotOptimize(ttf.fraction_at(24.0));
    }
}
BENCHMARK(BM_TotalTimeFraction);

// -- event engine --------------------------------------------------------------

void BM_EventEngine(benchmark::State& state) {
    for (auto _ : state) {
        sim::Simulation sim(net::TimePoint{0});
        rng::Stream rng(5);
        // Self-rescheduling workload of `range` concurrent timers.
        std::int64_t fired = 0;
        std::function<void(net::TimePoint)> tick = [&](net::TimePoint) {
            ++fired;
            if (fired < state.range(0) * 16)
                sim.after(net::Duration{rng.uniform_int(1, 1000)}, tick);
        };
        for (int i = 0; i < state.range(0); ++i)
            sim.after(net::Duration{rng.uniform_int(1, 1000)}, tick);
        sim.run_all();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            state.range(0) * 16);
}
BENCHMARK(BM_EventEngine)->Arg(100)->Arg(1000);

// -- pool allocation -------------------------------------------------------------

void BM_PoolChurn(benchmark::State& state) {
    pool::AddressPool pool(
        pool::PoolConfig{{net::IPv4Prefix::parse_or_throw("10.0.0.0/18")},
                         pool::AllocationStrategy::RandomSpread, 0.0, 0.0},
        rng::Stream(6));
    pool::ClientId client = 1;
    for (auto _ : state) {
        const auto addr = pool.allocate(client, net::TimePoint{0});
        benchmark::DoNotOptimize(addr);
        pool.release(client);
        ++client;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_PoolChurn);

// -- IPv6 text codec -----------------------------------------------------------

void BM_Ipv6ParseFormat(benchmark::State& state) {
    rng::Stream rng(7);
    std::vector<std::string> texts;
    for (int i = 0; i < 1024; ++i)
        texts.push_back(
            net::IPv6Address{rng.next_u64(), rng.next_u64()}.to_string());
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(net::IPv6Address::parse(texts[i & 1023]));
        ++i;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_Ipv6ParseFormat);

// -- DHCP wire codec -------------------------------------------------------------

void BM_DhcpWireRoundTrip(benchmark::State& state) {
    dhcp::WireMessage message;
    message.type = dhcp::MessageType::Request;
    message.xid = 0x12345678;
    message.requested_address = net::IPv4Address(10, 0, 0, 5);
    message.lease_seconds = 14400;
    message.server_id = net::IPv4Address(10, 0, 0, 1);
    message.client_id = {1, 2, 3, 4, 5, 6, 7};
    for (auto _ : state) {
        const auto bytes = dhcp::encode(message);
        benchmark::DoNotOptimize(dhcp::decode(bytes));
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_DhcpWireRoundTrip);

// -- end-to-end -------------------------------------------------------------------

void BM_QuickScenarioEndToEnd(benchmark::State& state) {
    const auto config = isp::presets::quick_scenario();
    for (auto _ : state) {
        auto scenario = isp::run_scenario(config);
        core::AnalysisPipeline pipeline;
        auto results = pipeline.run(scenario.bundle, scenario.prefix_table,
                                    scenario.registry, config.window);
        benchmark::DoNotOptimize(results.changes.size());
    }
}
BENCHMARK(BM_QuickScenarioEndToEnd)->Unit(benchmark::kMillisecond);

// -- sharded pipeline: thread-count comparison --------------------------------
//
// The per-probe stages (change extraction, reboot detection, the §5 outage
// loop) shard across core::PipelineConfig::threads; cross-population stages
// stay sequential. Compare Arg(1) vs Arg(8) for the speedup, and the raw
// sharded fan-out below for the per-probe-stage-only scaling.

void BM_PipelineThreads(benchmark::State& state) {
    // One shared scenario: generation dwarfs analysis and isn't measured.
    static const auto* scenario = [] {
        auto config = isp::presets::quick_scenario();
        auto* result = new isp::ScenarioResult(isp::run_scenario(config));
        return result;
    }();
    static const auto window = isp::presets::quick_scenario().window;
    core::PipelineConfig config;
    config.threads = std::size_t(state.range(0));
    core::AnalysisPipeline pipeline(config);
    for (auto _ : state) {
        auto results = pipeline.run(scenario->bundle, scenario->prefix_table,
                                    scenario->registry, window);
        benchmark::DoNotOptimize(results.changes.size());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_PipelineThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ParallelForShards(benchmark::State& state) {
    // Pure fan-out over a CPU-bound per-shard function: the per-probe-stage
    // scaling ceiling for a given thread count.
    const auto log = synthetic_log(365);
    par::ThreadPool pool(par::resolve_threads(std::size_t(state.range(0))));
    constexpr std::size_t kShards = 256;
    std::vector<std::size_t> slots(kShards);
    for (auto _ : state) {
        pool.parallel_for_shards(kShards, [&](std::size_t i) {
            slots[i] = core::extract_changes(log).changes.size();
        });
        benchmark::DoNotOptimize(slots.data());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) * kShards);
}
BENCHMARK(BM_ParallelForShards)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();

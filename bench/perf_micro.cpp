// Google-benchmark microbenchmarks for the performance-critical pieces:
// longest-prefix match, log parsing, change extraction, TTF computation,
// the event engine, pool allocation, and the end-to-end pipeline.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "atlas/binary_bundle.hpp"
#include "bgp/dir24_8.hpp"
#include "core/pipeline.hpp"
#include "netcore/bytesource.hpp"
#include "netcore/csv.hpp"
#include "dhcp/server.hpp"
#include "dhcp/wire.hpp"
#include "netcore/ipv6.hpp"
#include "netcore/obs/flight_recorder.hpp"
#include "netcore/obs/log.hpp"
#include "netcore/obs/metrics.hpp"
#include "netcore/obs/profiler.hpp"
#include "netcore/obs/timeseries.hpp"
#include "netcore/parallel.hpp"
#include "isp/presets.hpp"
#include "sim/cause_ledger.hpp"
#include "sim/reference_queue.hpp"

DYNADDR_LOG_MODULE(bench);

namespace {

using namespace dynaddr;

// -- radix trie LPM ----------------------------------------------------------

bgp::RadixTrie build_trie(int routes) {
    rng::Stream rng(1);
    bgp::RadixTrie trie;
    for (int i = 0; i < routes; ++i) {
        const net::IPv4Address base{std::uint32_t(rng.next_u64())};
        trie.insert(net::IPv4Prefix{base, int(rng.uniform_int(8, 24))},
                    std::uint32_t(i));
    }
    return trie;
}

void BM_TrieLongestMatch(benchmark::State& state) {
    const auto trie = build_trie(int(state.range(0)));
    rng::Stream rng(2);
    std::vector<net::IPv4Address> addresses;
    for (int i = 0; i < 4096; ++i)
        addresses.emplace_back(std::uint32_t(rng.next_u64()));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(trie.longest_match(addresses[i & 4095]));
        ++i;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_TrieLongestMatch)->Arg(1000)->Arg(10000)->Arg(100000);

// The DIR-24-8 stage compiled from the same trie: one or two dependent
// loads per lookup, so the curve must stay flat out to full-table scale
// (the trie above degrades with depth as the table grows).
void BM_Dir24LongestMatch(benchmark::State& state) {
    const bgp::Dir24_8 table(build_trie(int(state.range(0))));
    rng::Stream rng(2);
    std::vector<net::IPv4Address> addresses;
    for (int i = 0; i < 4096; ++i)
        addresses.emplace_back(std::uint32_t(rng.next_u64()));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.longest_match(addresses[i & 4095]));
        ++i;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_Dir24LongestMatch)
    ->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

// -- connection-log CSV parse -------------------------------------------------

void BM_ConnectionLogParse(benchmark::State& state) {
    // Build a realistic CSV once.
    std::vector<atlas::ConnectionLogEntry> entries;
    rng::Stream rng(3);
    net::TimePoint t = net::TimePoint::from_date(2015, 1, 1);
    for (int i = 0; i < 10000; ++i) {
        atlas::ConnectionLogEntry e;
        e.probe = atlas::ProbeId(i % 100);
        e.start = t;
        e.end = t + net::Duration::hours(23);
        e.address = atlas::PeerAddress::ipv4(
            net::IPv4Address{std::uint32_t(rng.next_u64())});
        entries.push_back(e);
        t += net::Duration::minutes(7);
    }
    std::stringstream buffer;
    atlas::write_connection_log_csv(buffer, entries);
    const std::string csv = buffer.str();
    for (auto _ : state) {
        std::istringstream in(csv);
        benchmark::DoNotOptimize(atlas::read_connection_log_csv(in));
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) * 10000);
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(csv.size()));
}
BENCHMARK(BM_ConnectionLogParse);

// Shared corpus for the ingestion benches: the same 10k-entry log as
// BM_ConnectionLogParse, in both representations.
const std::vector<atlas::ConnectionLogEntry>& bench_conlog_entries() {
    static const std::vector<atlas::ConnectionLogEntry> entries = [] {
        std::vector<atlas::ConnectionLogEntry> out;
        rng::Stream rng(3);
        net::TimePoint t = net::TimePoint::from_date(2015, 1, 1);
        for (int i = 0; i < 10000; ++i) {
            atlas::ConnectionLogEntry e;
            e.probe = atlas::ProbeId(i % 100);
            e.start = t;
            e.end = t + net::Duration::hours(23);
            e.address = atlas::PeerAddress::ipv4(
                net::IPv4Address{std::uint32_t(rng.next_u64())});
            out.push_back(e);
            t += net::Duration::minutes(7);
        }
        return out;
    }();
    return entries;
}

const std::string& bench_conlog_csv() {
    static const std::string csv = [] {
        std::stringstream buffer;
        atlas::write_connection_log_csv(buffer, bench_conlog_entries());
        return buffer.str();
    }();
    return csv;
}

// Columnar DAB2 decode of the same log. Bytes/s uses the CSV-equivalent
// logical size (what the text parser would have had to chew for the same
// records), so the number is directly comparable with
// BM_ConnectionLogParse; the physical .dab payload is ~5x smaller again.
void BM_BinaryLogParse(benchmark::State& state) {
    // The encoder wants probe-grouped input, like the bundle writer emits.
    auto sorted = bench_conlog_entries();
    std::sort(sorted.begin(), sorted.end(),
              [](const atlas::ConnectionLogEntry& a,
                 const atlas::ConnectionLogEntry& b) {
                  if (a.probe != b.probe) return a.probe < b.probe;
                  return a.start < b.start;
              });
    const std::string blob = atlas::encode_connection_log_binary(sorted);
    for (auto _ : state)
        benchmark::DoNotOptimize(atlas::decode_connection_log_binary(blob));
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(sorted.size()));
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(bench_conlog_csv().size()));
    state.counters["physical_bytes"] = double(blob.size());
}
BENCHMARK(BM_BinaryLogParse);

// mmap + SIMD delimiter scan over the same CSV, projecting the columns
// the change-extraction analyses actually touch — fields come out as
// string_views into the page cache, nothing is materialized. Each
// iteration re-maps the file, so the map/unmap cost is inside the loop.
void BM_MmapScanReader(benchmark::State& state) {
    const std::string path = "/tmp/dynaddr_bench_conlog.csv";
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bench_conlog_csv();
    }
    std::size_t rows = 0;
    for (auto _ : state) {
        auto source = net::ByteSource::map_file(path);
        csv::ScanReader reader(source.view());
        reader.project({"probe", "start", "end", "address"});
        rows = 0;
        while (const auto* row = reader.next_row()) {
            benchmark::DoNotOptimize(row);
            ++rows;
        }
    }
    if (rows != bench_conlog_entries().size())
        state.SkipWithError("row count mismatch");
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(rows));
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(bench_conlog_csv().size()));
    std::remove(path.c_str());
}
BENCHMARK(BM_MmapScanReader);

// -- change extraction + TTF --------------------------------------------------

core::ProbeLog synthetic_log(int entries) {
    core::ProbeLog log;
    log.probe = 1;
    rng::Stream rng(4);
    net::TimePoint t = net::TimePoint::from_date(2015, 1, 1);
    for (int i = 0; i < entries; ++i) {
        atlas::ConnectionLogEntry e;
        e.probe = 1;
        e.start = t;
        e.end = t + net::Duration::hours(23);
        e.address = atlas::PeerAddress::ipv4(
            net::IPv4Address{std::uint32_t(rng.uniform_int(1, 1 << 20))});
        log.entries.push_back(e);
        t += net::Duration::hours(24);
    }
    return log;
}

void BM_ExtractChanges(benchmark::State& state) {
    const auto log = synthetic_log(365);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::extract_changes(log));
    state.SetItemsProcessed(std::int64_t(state.iterations()) * 365);
}
BENCHMARK(BM_ExtractChanges);

void BM_TotalTimeFraction(benchmark::State& state) {
    const auto changes = core::extract_changes(synthetic_log(365));
    for (auto _ : state) {
        core::TotalTimeFraction ttf;
        ttf.add_all(changes.spans);
        benchmark::DoNotOptimize(ttf.fraction_at(24.0));
    }
}
BENCHMARK(BM_TotalTimeFraction);

// -- event engine --------------------------------------------------------------

void BM_EventEngine(benchmark::State& state) {
    for (auto _ : state) {
        sim::Simulation sim(net::TimePoint{0});
        rng::Stream rng(5);
        // Self-rescheduling workload of `range` concurrent timers.
        std::int64_t fired = 0;
        std::function<void(net::TimePoint)> tick = [&](net::TimePoint) {
            ++fired;
            if (fired < state.range(0) * 16)
                sim.after(net::Duration{rng.uniform_int(1, 1000)}, tick);
        };
        for (int i = 0; i < state.range(0); ++i)
            sim.after(net::Duration{rng.uniform_int(1, 1000)}, tick);
        sim.run_all();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            state.range(0) * 16);
}
BENCHMARK(BM_EventEngine)->Arg(100)->Arg(1000);

// Raw queue comparison: the same self-rescheduling workload driven
// directly against a queue type, at 1M+ total events. BM_EventEngineWheel
// runs the timer-wheel engine; BM_EventEngineBaseline runs the original
// std::map implementation kept in sim/reference_queue.hpp. The wheel must
// stay >= 5x the baseline at Arg(1000000).
template <typename Queue>
std::int64_t event_workload(std::int64_t total_events,
                            std::int64_t concurrent) {
    Queue queue;
    rng::Stream rng(5);
    std::int64_t fired = 0;
    std::function<void(net::TimePoint)> tick = [&](net::TimePoint t) {
        ++fired;
        if (fired + concurrent <= total_events)
            queue.schedule(t + net::Duration{rng.uniform_int(1, 1000)}, tick);
    };
    for (std::int64_t i = 0; i < concurrent; ++i)
        queue.schedule(net::TimePoint{rng.uniform_int(1, 1000)}, tick);
    while (queue.run_next()) {
    }
    return fired;
}

void BM_EventEngineWheel(benchmark::State& state) {
    for (auto _ : state)
        benchmark::DoNotOptimize(
            event_workload<sim::EventQueue>(state.range(0), 4096));
    state.SetItemsProcessed(std::int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EventEngineWheel)
    ->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_EventEngineBaseline(benchmark::State& state) {
    for (auto _ : state)
        benchmark::DoNotOptimize(
            event_workload<sim::ReferenceEventQueue>(state.range(0), 4096));
    state.SetItemsProcessed(std::int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EventEngineBaseline)
    ->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_EventEngineCancelHeavy(benchmark::State& state) {
    // Schedule/cancel churn: half of all scheduled timers are cancelled
    // before they fire (lease renewals superseded by reconnects). Cancel
    // is an O(1) tombstone; the wheel reclaims slots lazily.
    for (auto _ : state) {
        sim::EventQueue queue;
        rng::Stream rng(11);
        std::vector<sim::EventId> pending;
        std::int64_t fired = 0;
        for (std::int64_t i = 0; i < state.range(0); ++i) {
            pending.push_back(
                queue.schedule(net::TimePoint{rng.uniform_int(1, 1 << 20)},
                               [&fired](net::TimePoint) { ++fired; }));
            if (pending.size() >= 2 && rng.bernoulli(0.5)) {
                const auto victim =
                    std::size_t(rng.uniform_int(0, std::int64_t(pending.size()) - 1));
                queue.cancel(pending[victim]);
                pending[victim] = pending.back();
                pending.pop_back();
            }
        }
        while (queue.run_next()) {
        }
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EventEngineCancelHeavy)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_EventEnginePeriodic(benchmark::State& state) {
    // The k-root ping cadence: one periodic event per probe at 240 s,
    // re-armed in place for a simulated week. One slot per probe for the
    // whole run — no per-firing allocation at all.
    for (auto _ : state) {
        sim::EventQueue queue;
        std::int64_t fired = 0;
        const std::int64_t horizon = 7 * 86400;
        std::vector<sim::EventId> ids;
        for (int probe = 0; probe < 400; ++probe)
            ids.push_back(queue.schedule_every(
                net::TimePoint{probe % 240}, net::Duration{240},
                [&](net::TimePoint) { ++fired; }));
        while (auto next = queue.next_time()) {
            if (next->unix_seconds() > horizon) break;
            queue.run_next();
        }
        for (const auto id : ids) queue.cancel(id);
        while (queue.run_next()) {
        }
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) * 400 *
                            (7 * 86400 / 240));
}
BENCHMARK(BM_EventEnginePeriodic)->Unit(benchmark::kMillisecond);

// -- observability overhead -----------------------------------------------------

void BM_LogDisabled(benchmark::State& state) {
    // The cost of a log statement that does not fire: one relaxed load
    // plus a compare. Target <= 1 ns/op — cheap enough for hot loops.
    obs::set_module_level("bench", obs::LogLevel::Off);
    std::uint64_t i = 0;
    for (auto _ : state) {
        DYNADDR_LOG(Debug, bench, "iteration ", i);
        benchmark::DoNotOptimize(i);
        ++i;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_LogDisabled);

void BM_RawAtomicIncrement(benchmark::State& state) {
    // The floor any counter design pays: one uncontended relaxed
    // fetch_add (a `lock add` on x86). BM_MetricsCounterHot is measured
    // against this, not against an absolute nanosecond count.
    std::atomic<std::uint64_t> raw{0};
    for (auto _ : state) raw.fetch_add(1, std::memory_order_relaxed);
    benchmark::DoNotOptimize(raw.load(std::memory_order_relaxed));
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_RawAtomicIncrement);

void BM_MetricsCounterHot(benchmark::State& state) {
    // The metrics hot path: one relaxed fetch_add on a cached reference.
    // Target: within 1.5 ns of BM_RawAtomicIncrement on the host — the
    // registry must add indirection, never a second atomic or a lock.
    // bench_smoke asserts this via --bench_assert_counter_overhead.
    obs::Counter& counter = obs::counter("bench.hot_counter");
    for (auto _ : state) counter.inc();
    benchmark::DoNotOptimize(counter.value());
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_MetricsCounterHot);

void BM_SeriesSampleTick(benchmark::State& state) {
    // One recorder tick: walk the registry, record deltas for whatever
    // moved, steady-state ring merges included. This is the per-interval
    // cost a live run pays, so it only has to be cheap relative to the
    // cadence (>= 1 s), not to the event loop.
    auto& recorder = obs::SeriesRecorder::instance();
    recorder.disable();
    recorder.configure({1.0, 1024});
    recorder.enable();
    obs::Counter& moving = obs::counter("bench.series_moving");
    double t = 0.0;
    for (auto _ : state) {
        moving.inc();
        recorder.sample(t);
        t += 1.0;
    }
    recorder.disable();
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_SeriesSampleTick);

void BM_FlightRecorderRecord(benchmark::State& state) {
    // The enabled flight-recorder ring write: sim-clock read + bounded
    // slot fill + one release store — no atomic RMW, no lock, no
    // allocation. Target: within ~2x of BM_RawAtomicIncrement (the
    // issue's 2x-BM_LogDisabled aspiration is below the cost of the
    // clock read alone; see DESIGN.md §6 for the measured breakdown).
    obs::enable_flight_recorder(256, /*install_handlers=*/false);
    for (auto _ : state)
        obs::flight_record(obs::LogLevel::Debug, "bench",
                           "flight-record hot-path probe");
    obs::disable_flight_recorder();
    obs::clear_flight_records();
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_FlightRecorderRecord);

void BM_FlightCaptureDisabled(benchmark::State& state) {
    // The cost every log statement pays once the recorder exists but is
    // off: one relaxed load + branch. Must match BM_LogDisabled — this
    // is the "zero cost when disabled" guarantee.
    obs::disable_flight_recorder();
    for (auto _ : state)
        obs::flight_capture(obs::LogLevel::Debug, "bench", "never stored");
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_FlightCaptureDisabled);

// -- cause ledger --------------------------------------------------------------

void BM_CauseLedgerAppend(benchmark::State& state) {
    // One full ledger transition: address lost, cause resolved, record
    // emitted (keep_records off, no sink — the resolution ladder and
    // emit bookkeeping, not the serialization, is what's measured).
    sim::CauseLedgerConfig config;
    config.keep_records = false;
    sim::ScopedCauseLedger scope(config);
    sim::cause_register_client(1, 1001);
    std::uint32_t raw = 0x5A030101;
    net::TimePoint now(1420070400);
    sim::cause_acquired(1, now, net::IPv4Address{raw});
    for (auto _ : state) {
        now += net::Duration::seconds(600);
        sim::cause_lost(1, now, sim::CauseKind::LeaseExpiry,
                        sim::CauseSite::DhcpLeaseTimer);
        sim::cause_acquired(1, now + net::Duration::seconds(30),
                            net::IPv4Address{++raw});
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_CauseLedgerAppend);

void BM_CauseLedgerDisabled(benchmark::State& state) {
    // The hook cost with no ledger installed (the default on every
    // simulation): one pointer load + branch. Must match BM_LogDisabled —
    // the pure-observer "zero cost when off" guarantee.
    const net::TimePoint now(1420070400);
    for (auto _ : state)
        sim::cause_acquired(1, now, net::IPv4Address{0x5A030101});
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_CauseLedgerDisabled);

// -- sampling self-profiler ---------------------------------------------------

void BM_ProfilerSampleCost(benchmark::State& state) {
    // One synchronous sweep over the registered threads — exactly what
    // the sampler thread does per tick, so ticks-per-second × this is
    // the profiler's whole active cost. The calling thread is registered,
    // so each iteration walks one real backtrace and folds it.
    obs::clear_profile();
    obs::profiler_register_current_thread("bench-profiled");
    for (auto _ : state)
        benchmark::DoNotOptimize(obs::profiler_sample_once());
    obs::profiler_unregister_current_thread();
    obs::clear_profile();
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_ProfilerSampleCost);

void BM_ProfilerDisabledCheck(benchmark::State& state) {
    // The residual cost when profiling is off: one relaxed load — the
    // "disabled cost ≈ 0" guarantee, same bar as BM_FlightCaptureDisabled.
    obs::stop_profiler();
    for (auto _ : state)
        benchmark::DoNotOptimize(obs::profiler_enabled());
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_ProfilerDisabledCheck);

// -- pool allocation -------------------------------------------------------------

// Steady-state allocate/release over a rotating subscriber population —
// the hot loop every simulated ISP runs. One variant per strategy: Sticky
// exercises the direct-index binding path, Sequential the bitmap word
// scan, RandomSpread/PrefixHop the weighted bucket draws.
void BM_PoolChurn(benchmark::State& state, pool::AllocationStrategy strategy) {
    pool::AddressPool pool(
        pool::PoolConfig{{net::IPv4Prefix::parse_or_throw("10.0.0.0/18"),
                          net::IPv4Prefix::parse_or_throw("10.0.64.0/18")},
                         strategy, 0.0, 0.0},
        rng::Stream(6));
    constexpr pool::ClientId kClients = 4096;
    pool::ClientId client = 1;
    for (auto _ : state) {
        const auto addr = pool.allocate(client, net::TimePoint{0});
        benchmark::DoNotOptimize(addr);
        pool.release(client);
        client = client % kClients + 1;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK_CAPTURE(BM_PoolChurn, Sticky, pool::AllocationStrategy::Sticky);
BENCHMARK_CAPTURE(BM_PoolChurn, Sequential, pool::AllocationStrategy::Sequential);
BENCHMARK_CAPTURE(BM_PoolChurn, RandomSpread,
                  pool::AllocationStrategy::RandomSpread);
BENCHMARK_CAPTURE(BM_PoolChurn, PrefixHop, pool::AllocationStrategy::PrefixHop);

// Full DHCP serve rate: a warmed server renewing leases for a rotating
// client population — LeaseDb refresh + batched expiry sweep + pool
// sticky path per iteration. This is the end-to-end per-lease cost the
// "millions of subscribers" goal is priced against.
void BM_LeaseServeRate(benchmark::State& state) {
    sim::Simulation sim(net::TimePoint{0});
    pool::AddressPool pool(
        pool::PoolConfig{{net::IPv4Prefix::parse_or_throw("10.0.0.0/18")},
                         pool::AllocationStrategy::Sticky, 0.0, 0.0},
        rng::Stream(8));
    dhcp::Server server(dhcp::ServerConfig{}, pool, sim);
    constexpr pool::ClientId kClients = 4096;
    std::vector<net::IPv4Address> held(kClients + 1);
    for (pool::ClientId c = 1; c <= kClients; ++c) {
        const auto offer = server.handle_discover(c);
        const auto result = server.handle_request(c, offer->address);
        held[c] = result.address;
    }
    pool::ClientId client = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(server.handle_renew(client, held[client]));
        client = client % kClients + 1;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_LeaseServeRate);

// -- IPv6 text codec -----------------------------------------------------------

void BM_Ipv6ParseFormat(benchmark::State& state) {
    rng::Stream rng(7);
    std::vector<std::string> texts;
    for (int i = 0; i < 1024; ++i)
        texts.push_back(
            net::IPv6Address{rng.next_u64(), rng.next_u64()}.to_string());
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(net::IPv6Address::parse(texts[i & 1023]));
        ++i;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_Ipv6ParseFormat);

// -- DHCP wire codec -------------------------------------------------------------

void BM_DhcpWireRoundTrip(benchmark::State& state) {
    dhcp::WireMessage message;
    message.type = dhcp::MessageType::Request;
    message.xid = 0x12345678;
    message.requested_address = net::IPv4Address(10, 0, 0, 5);
    message.lease_seconds = 14400;
    message.server_id = net::IPv4Address(10, 0, 0, 1);
    message.client_id = {1, 2, 3, 4, 5, 6, 7};
    for (auto _ : state) {
        const auto bytes = dhcp::encode(message);
        benchmark::DoNotOptimize(dhcp::decode(bytes));
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_DhcpWireRoundTrip);

// -- end-to-end -------------------------------------------------------------------

void BM_ScenarioGenerate(benchmark::State& state) {
    // Pure simulation throughput: world construction + event loop + dataset
    // emission, no analysis. This is the loop the timer wheel accelerates.
    const auto config = isp::presets::quick_scenario();
    std::int64_t rows = 0;
    for (auto _ : state) {
        auto scenario = isp::run_scenario(config);
        rows = std::int64_t(scenario.bundle.connection_log.size() +
                            scenario.bundle.kroot_pings.size() +
                            scenario.bundle.uptime_records.size());
        benchmark::DoNotOptimize(scenario.bundle.connection_log.data());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) * rows);
}
BENCHMARK(BM_ScenarioGenerate)->Unit(benchmark::kMillisecond);

void BM_QuickScenarioEndToEnd(benchmark::State& state) {
    const auto config = isp::presets::quick_scenario();
    for (auto _ : state) {
        auto scenario = isp::run_scenario(config);
        core::AnalysisPipeline pipeline;
        auto results = pipeline.run(scenario.bundle, scenario.prefix_table,
                                    scenario.registry, config.window);
        benchmark::DoNotOptimize(results.changes.size());
    }
}
BENCHMARK(BM_QuickScenarioEndToEnd)->Unit(benchmark::kMillisecond);

void BM_QuickScenarioProfiled(benchmark::State& state) {
    // BM_QuickScenarioEndToEnd with the 97 Hz sampler live: this pair's
    // delta in BENCH_*.json is the profiler's measured end-to-end cost
    // (acceptance bar: <= 5 %).
    const auto config = isp::presets::quick_scenario();
    obs::clear_profile();
    obs::profiler_register_current_thread("bench-e2e");
    obs::start_profiler(97.0);
    for (auto _ : state) {
        auto scenario = isp::run_scenario(config);
        core::AnalysisPipeline pipeline;
        auto results = pipeline.run(scenario.bundle, scenario.prefix_table,
                                    scenario.registry, config.window);
        benchmark::DoNotOptimize(results.changes.size());
    }
    obs::stop_profiler();
    obs::profiler_unregister_current_thread();
    state.counters["profiler_samples"] = double(obs::profiler_samples_taken());
    obs::clear_profile();
}
BENCHMARK(BM_QuickScenarioProfiled)->Unit(benchmark::kMillisecond);

// -- sharded pipeline: thread-count comparison --------------------------------
//
// The per-probe stages (change extraction, reboot detection, the §5 outage
// loop) shard across core::PipelineConfig::threads; cross-population stages
// stay sequential. Compare Arg(1) vs Arg(8) for the speedup, and the raw
// sharded fan-out below for the per-probe-stage-only scaling.

void BM_PipelineThreads(benchmark::State& state) {
    // One shared scenario: generation dwarfs analysis and isn't measured.
    static const auto* scenario = [] {
        auto config = isp::presets::quick_scenario();
        auto* result = new isp::ScenarioResult(isp::run_scenario(config));
        return result;
    }();
    static const auto window = isp::presets::quick_scenario().window;
    core::PipelineConfig config;
    config.threads = std::size_t(state.range(0));
    core::AnalysisPipeline pipeline(config);
    const auto before = obs::metrics_snapshot();
    for (auto _ : state) {
        auto results = pipeline.run(scenario->bundle, scenario->prefix_table,
                                    scenario->registry, window);
        benchmark::DoNotOptimize(results.changes.size());
    }
    // Work counters, the speedup argument on a box whose wall clock can't
    // make it (one core): how much of the sharded work pool workers
    // claimed vs the calling thread, and how much work an iteration is.
    const auto work = obs::metrics_diff(obs::metrics_snapshot(), before);
    const double iterations = double(state.iterations());
    const auto per_iter = [&](const char* name) {
        const auto it = work.counters.find(name);
        return it == work.counters.end() ? 0.0 : double(it->second) / iterations;
    };
    state.counters["probes_in"] = per_iter("pipeline.probes_in");
    state.counters["shards"] = per_iter("par.shards_executed");
    state.counters["shards_offloaded"] = per_iter("par.shards_offloaded");
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_PipelineThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ParallelForShards(benchmark::State& state) {
    // Pure fan-out over a CPU-bound per-shard function: the per-probe-stage
    // scaling ceiling for a given thread count.
    const auto log = synthetic_log(365);
    par::ThreadPool pool(par::resolve_threads(std::size_t(state.range(0))));
    constexpr std::size_t kShards = 256;
    std::vector<std::size_t> slots(kShards);
    const auto before = obs::metrics_snapshot();
    for (auto _ : state) {
        pool.parallel_for_shards(kShards, [&](std::size_t i) {
            slots[i] = core::extract_changes(log).changes.size();
        });
        benchmark::DoNotOptimize(slots.data());
    }
    const auto work = obs::metrics_diff(obs::metrics_snapshot(), before);
    const double iterations = double(state.iterations());
    const auto shards_it = work.counters.find("par.shards_executed");
    const auto offloaded_it = work.counters.find("par.shards_offloaded");
    state.counters["shards"] =
        shards_it == work.counters.end() ? 0.0
                                         : double(shards_it->second) / iterations;
    state.counters["shards_offloaded"] =
        offloaded_it == work.counters.end()
            ? 0.0
            : double(offloaded_it->second) / iterations;
    state.counters["threads"] = double(pool.thread_count());
    state.SetItemsProcessed(std::int64_t(state.iterations()) * kShards);
}
BENCHMARK(BM_ParallelForShards)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Collects every finished run so --bench_report can serialize name,
// items/sec and bytes/sec after the normal console output.
class ReportCollector : public benchmark::ConsoleReporter {
public:
    void ReportRuns(const std::vector<Run>& runs) override {
        for (const Run& run : runs) collected_.push_back(run);
        ConsoleReporter::ReportRuns(runs);
    }

    void write_json(const std::string& path) const {
        // Merge with an existing report: entries for benchmarks not re-run
        // in this invocation survive, so partial runs (e.g. a filtered
        // bench_smoke) never silently drop prior results. Our own writer
        // emits one entry per line, so a line scan recovers the entries.
        std::vector<std::pair<std::string, std::string>> entries;  // name, line
        {
            std::ifstream in(path);
            std::string line;
            while (std::getline(in, line)) {
                const auto key = line.find("{\"name\": \"");
                if (key == std::string::npos) continue;
                const auto name_start = key + 10;
                const auto name_end = line.find('"', name_start);
                if (name_end == std::string::npos) continue;
                std::string body = line.substr(key);
                if (body.size() >= 1 && body.back() == ',') body.pop_back();
                entries.emplace_back(
                    line.substr(name_start, name_end - name_start),
                    std::move(body));
            }
        }
        for (const Run& run : collected_) {
            const auto rate = [&](const char* key) {
                auto it = run.counters.find(key);
                return it == run.counters.end() ? 0.0 : double(it->second);
            };
            std::ostringstream entry;
            entry << "{\"name\": \"" << run.benchmark_name()
                  << "\", \"real_time\": " << run.GetAdjustedRealTime()
                  << ", \"cpu_time\": " << run.GetAdjustedCPUTime()
                  << ", \"time_unit\": \""
                  << benchmark::GetTimeUnitString(run.time_unit)
                  << "\", \"items_per_second\": "
                  << std::int64_t(rate("items_per_second"))
                  << ", \"bytes_per_second\": "
                  << std::int64_t(rate("bytes_per_second"));
            // Custom work counters (shards claimed, probes per iteration,
            // ...) ride along so the report can argue work-split where
            // wall-clock speedup can't (single-core CI hosts).
            bool any_custom = false;
            for (const auto& [name, value] : run.counters) {
                if (name == "items_per_second" || name == "bytes_per_second")
                    continue;
                entry << (any_custom ? ", " : ", \"counters\": {") << '"'
                      << name << "\": " << double(value);
                any_custom = true;
            }
            if (any_custom) entry << "}";
            entry << "}";
            const std::string name = run.benchmark_name();
            auto it = std::find_if(entries.begin(), entries.end(),
                                   [&](const auto& e) { return e.first == name; });
            if (it != entries.end())
                it->second = entry.str();  // fresh result replaces stale
            else
                entries.emplace_back(name, entry.str());
        }
        std::ofstream out(path);
        out << "[\n";
        for (std::size_t i = 0; i < entries.size(); ++i)
            out << "  " << entries[i].second
                << (i + 1 < entries.size() ? "," : "") << "\n";
        out << "]\n";
    }

private:
    std::vector<Run> collected_;
};

/// Hand-timed assertion behind --bench_assert_counter_overhead: the
/// registry counter must cost within 1.5 ns of a raw uncontended atomic
/// increment. Relative, so it holds on any host regardless of how slow
/// `lock add` itself is there. Best-of-N trials squeeze out scheduler
/// noise on small CI boxes.
int assert_counter_overhead() {
    constexpr double kMaxOverheadNs = 1.5;
    constexpr std::int64_t kOps = 20'000'000;
    const auto best_ns_per_op = [](auto&& body) {
        double best = 1e18;
        for (int trial = 0; trial < 7; ++trial) {
            const auto start = std::chrono::steady_clock::now();
            body(kOps);
            const std::chrono::duration<double, std::nano> elapsed =
                std::chrono::steady_clock::now() - start;
            best = std::min(best, elapsed.count() / double(kOps));
        }
        return best;
    };

    std::atomic<std::uint64_t> raw{0};
    const double raw_ns = best_ns_per_op([&](std::int64_t ops) {
        for (std::int64_t i = 0; i < ops; ++i)
            raw.fetch_add(1, std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(raw.load(std::memory_order_relaxed));

    dynaddr::obs::Counter& counter = dynaddr::obs::counter("bench.hot_counter");
    const double counter_ns = best_ns_per_op([&](std::int64_t ops) {
        for (std::int64_t i = 0; i < ops; ++i) counter.inc();
    });
    benchmark::DoNotOptimize(counter.value());

    const double overhead = counter_ns - raw_ns;
    std::printf("counter overhead: raw atomic %.2f ns/op, registry counter "
                "%.2f ns/op, overhead %.2f ns (budget %.1f ns)\n",
                raw_ns, counter_ns, overhead, kMaxOverheadNs);
    if (overhead > kMaxOverheadNs) {
        std::fprintf(stderr, "FAIL: registry counter is %.2f ns over a raw "
                     "atomic increment (budget %.1f ns)\n",
                     overhead, kMaxOverheadNs);
        return 1;
    }
    return 0;
}

std::string default_report_path() {
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    localtime_r(&now, &tm);
    char date[16];
    std::snprintf(date, sizeof date, "%04d-%02d-%02d", tm.tm_year + 1900,
                  tm.tm_mon + 1, tm.tm_mday);
    return std::string("BENCH_") + date + ".json";
}

}  // namespace

// Custom main: identical to BENCHMARK_MAIN plus a --bench_report[=PATH]
// flag that writes a machine-readable BENCH_<date>.json next to the
// binary (name, items/sec, bytes/sec per benchmark).
int main(int argc, char** argv) {
    std::string report_path;
    bool check_counter_overhead = false;
    std::vector<char*> args;
    std::string explicit_path;  // owns the =PATH substring
    for (int i = 0; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--bench_report") {
            report_path = default_report_path();
        } else if (arg.rfind("--bench_report=", 0) == 0) {
            explicit_path = std::string(arg.substr(15));
            report_path = explicit_path;
        } else if (arg == "--bench_assert_counter_overhead") {
            check_counter_overhead = true;
        } else {
            args.push_back(argv[i]);
        }
    }
    if (check_counter_overhead && assert_counter_overhead() != 0) return 1;
    int filtered_argc = int(args.size());
    benchmark::Initialize(&filtered_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
        return 1;
    if (report_path.empty()) {
        benchmark::RunSpecifiedBenchmarks();
    } else {
        ReportCollector collector;
        benchmark::RunSpecifiedBenchmarks(&collector);
        collector.write_json(report_path);
    }
    benchmark::Shutdown();
    return 0;
}

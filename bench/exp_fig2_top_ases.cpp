// Figure 2 — total time fraction CDFs for the five ASes with the most
// probes: Orange (1-week mode), DTAG (24 h mode), BT (2-week mode), and
// the stable LGI and Verizon.

#include "exp_common.hpp"

namespace {

/// TTF aggregated over the single-AS probes of one ASN.
dynaddr::core::TotalTimeFraction ttf_for_as(
    const dynaddr::core::AnalysisResults& results, std::uint32_t asn) {
    dynaddr::core::TotalTimeFraction ttf;
    for (const auto& changes : results.changes) {
        auto probe_as = results.mapping.as_of(changes.probe);
        if (probe_as && *probe_as == asn) ttf.add_all(changes.spans);
    }
    return ttf;
}

}  // namespace

int main() {
    using namespace dynaddr;
    bench::print_header("Figure 2", "Total time fraction for the top-5 probe ASes");

    auto experiment = bench::run_experiment(isp::presets::paper_scenario());
    const auto& results = experiment.results;

    const std::pair<std::uint32_t, const char*> ases[] = {
        {3215, "Orange"}, {3320, "DTAG"}, {2856, "BT"},
        {6830, "LGI"},    {701, "Verizon"}};

    std::vector<chart::Series> series;
    std::vector<std::vector<std::string>> rows;
    for (const auto& [asn, name] : ases) {
        const auto ttf = ttf_for_as(results, asn);
        series.push_back(bench::ttf_series(name, ttf));
        rows.push_back({name, core::fmt(ttf.fraction_at(24.0), 2),
                        core::fmt(ttf.fraction_at(168.0), 2),
                        core::fmt(ttf.fraction_at(337.0) + ttf.fraction_at(336.0), 2),
                        core::fmt(ttf.total_hours() / 8760.0, 1)});
    }
    std::cout << chart::render_cdf_chart(series, bench::duration_chart_options());
    std::cout << "\n"
              << chart::render_table({"AS", "f(24h)", "f(1w)", "f(2w)", "years"},
                                     rows);

    bench::print_paper_note(
        "Orange: 55% of total time in exactly 1-week tenures; DTAG: 76% in "
        "24 h tenures; BT: 13% at 2 weeks; LGI and Verizon have no modes, "
        "with Verizon's tenures the longest.");
    bench::print_footer(experiment);
    return 0;
}

// IPv6 privacy extensions (paper §8 future work).
//
// The paper filters dual-stack and IPv6-only probes out of its IPv4
// analysis but cites RFC 4941 (24-hour temporary-address rotation) and
// Plonka & Berger's finding that >90 % of client IPv6 addresses are
// ephemeral. This experiment runs the ephemeral/rotation analysis over
// exactly the probes the IPv4 pipeline discards and checks both numbers.

#include "exp_common.hpp"

int main() {
    using namespace dynaddr;
    bench::print_header("IPv6 privacy", "Temporary-address rotation (future work)");

    auto experiment = bench::run_experiment(isp::presets::paper_scenario());
    const auto& analysis = experiment.results.ipv6_privacy;

    std::cout << "Probes with IPv6 connections: " << analysis.probes.size()
              << " (the dual-stack + IPv6-only populations the IPv4 pipeline "
                 "filters out)\n";
    std::cout << "Distinct IPv6 addresses:      " << analysis.total_addresses
              << "\n";
    std::cout << "Ephemeral (lifetime <= 36 h): " << analysis.ephemeral_addresses
              << " (" << core::fmt(100.0 * analysis.ephemeral_fraction(), 1)
              << "%)\n";
    std::cout << "Rotating probes (>=3 IIDs in one /64): "
              << analysis.rotating_probes << " of " << analysis.probes.size()
              << " ("
              << core::fmt(analysis.probes.empty()
                               ? 0.0
                               : 100.0 * analysis.rotating_probes /
                                     double(analysis.probes.size()),
                           1)
              << "% — the privacy-extensions share)\n\n";

    if (analysis.rotation_cdf.sample_count() > 0) {
        std::cout << "Rotation-period estimates (per probe, hours):\n";
        std::cout << "  median " << core::fmt(analysis.rotation_cdf.quantile(0.5), 1)
                  << " h, p10 " << core::fmt(analysis.rotation_cdf.quantile(0.1), 1)
                  << " h, p90 " << core::fmt(analysis.rotation_cdf.quantile(0.9), 1)
                  << " h\n";
        chart::Series series{"rotation period", analysis.rotation_cdf.points()};
        chart::ChartOptions options;
        options.width = 60;
        options.height = 12;
        options.x_label = "hours between successive temporary addresses";
        options.y_label = "Fraction of rotating probes (CDF)";
        std::cout << chart::render_cdf_chart({series}, options);
    }

    bench::print_paper_note(
        "RFC 4941 recommends regenerating temporary IPv6 addresses every "
        "24 hours; Plonka & Berger (IMC 2015, cited in §7) found more than "
        "90% of client IPv6 addresses ephemeral. Our v6-capable probe "
        "population is generated with 90% privacy-extension hosts, and the "
        "analysis recovers both the ephemeral share and the 24 h rotation "
        "mode from connection logs alone.");
    bench::print_footer(experiment);
    return 0;
}

// Administrative renumbering (paper §8, future work).
//
// The paper observed exactly one instance of en-masse reassignment from
// one prefix to another and named the systematic analysis as future work.
// This experiment plants a mid-year administrative renumbering in one
// DHCP ISP (retire one block, light up a fresh one; DHCP servers NAK
// every lease on the old block at its next renewal) and shows that the
// detector recovers the event — the AS, the retired prefix, the
// destination, and the date — while flagging nothing anywhere else.

#include "exp_common.hpp"

int main() {
    using namespace dynaddr;
    bench::print_header("Admin renumbering",
                        "En-masse prefix migration (paper future work)");

    auto config = isp::presets::paper_scenario();
    // Plant the event: LGI retires its first block in favour of a fresh
    // one on 2015-07-15. Give the fresh block an announced aggregate.
    const net::TimePoint when = net::TimePoint::from_date(2015, 7, 15);
    for (auto& isp : config.isps) {
        if (isp.asn != 6830) continue;
        isp.pool_prefixes.push_back(net::IPv4Prefix::parse_or_throw("95.80.0.0/22"));
        isp.announced_prefixes.push_back(
            net::IPv4Prefix::parse_or_throw("95.80.0.0/16"));
        isp::AdminRenumbering event;
        event.when = when;
        event.retire_pool_index = 0;  // 62.163.0.0/22
        event.enable_pool_index = isp.pool_prefixes.size() - 1;
        isp.admin_events.push_back(event);
    }

    auto experiment = bench::run_experiment(std::move(config));
    const auto& events = experiment.results.admin_events;

    std::cout << "Planted: AS6830 retires 62.163.0.0/16 for 95.80.0.0/16 on "
              << when.to_string().substr(0, 10) << "\n\n";
    std::cout << "Detected administrative renumberings:\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto& event : events) {
        const auto info = experiment.scenario.registry.find(event.asn);
        rows.push_back({info ? info->name : "AS" + std::to_string(event.asn),
                        event.retired_prefix.to_string(),
                        event.destination_prefix.to_string(),
                        event.first_departure.to_string().substr(0, 10) + " .. " +
                            event.last_departure.to_string().substr(0, 10),
                        std::to_string(event.probes_moved)});
    }
    if (rows.empty())
        std::cout << "  (none)\n";
    else
        std::cout << chart::render_table(
            {"AS", "Retired prefix", "Destination", "Departures", "Probes"},
            rows);

    bool planted_found = false;
    for (const auto& event : events)
        // A probe that rode out an outage across the event date shows a
        // last-seen slightly before it, so allow a few days of slack.
        planted_found = planted_found ||
                        (event.asn == 6830 &&
                         event.retired_prefix ==
                             net::IPv4Prefix::parse_or_throw("62.163.0.0/16") &&
                         event.first_departure >= when - net::Duration::days(4) &&
                         event.last_departure <= when + net::Duration::days(4));
    std::cout << "\nPlanted event recovered: " << (planted_found ? "YES" : "NO")
              << "; false positives: "
              << int(events.size()) - int(planted_found) << "\n";

    bench::print_paper_note(
        "\"we found only one instance of administrative renumbering — "
        "reassignment of addresses en masse from one prefix to another\"; "
        "quantifying how much address churn administrative renumbering "
        "explains is listed as future work. This module implements that "
        "detector and validates it against planted ground truth.");
    bench::print_footer(experiment);
    return 0;
}

// Figure 1 — cumulative distribution of total time fraction by continent.
//
// Vertical segments are periodic-renumbering modes: Europe at 24 h and
// 1 week, Africa/Asia at 24 h, South America at 12/28/48/192 h. North
// America and Oceania stay smooth, with NA spending most time in
// multi-week tenures.

#include "exp_common.hpp"

int main() {
    using namespace dynaddr;
    bench::print_header("Figure 1", "Total time fraction by continent");

    auto experiment = bench::run_experiment(isp::presets::paper_scenario());
    const auto& geo = experiment.results.geography;

    std::vector<chart::Series> series;
    for (const auto& [continent, ttf] : geo.by_continent)
        series.push_back(bench::ttf_series(bgp::continent_code(continent), ttf));
    std::cout << chart::render_cdf_chart(series, bench::duration_chart_options());

    std::cout << "\nMode masses (total time fraction at key durations):\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto& [continent, ttf] : geo.by_continent) {
        rows.push_back({bgp::continent_code(continent),
                        core::fmt(ttf.fraction_at(12.0), 3),
                        core::fmt(ttf.fraction_at(24.0), 3),
                        core::fmt(ttf.fraction_at(48.0), 3),
                        core::fmt(ttf.fraction_at(168.0), 3),
                        core::fmt(1.0 - ttf.fraction_at_or_below(24.0 * 50), 3),
                        core::fmt(ttf.total_hours() / 8760.0, 1)});
    }
    std::cout << chart::render_table(
        {"Continent", "f(12h)", "f(24h)", "f(48h)", "f(1w)", ">50d", "years"},
        rows);

    bench::print_paper_note(
        "EU f(24h)=0.16, f(1w)=0.08; AF f(24h)=0.16; AS f(24h)=0.07; SA "
        "modes 0.11@12h, 0.07@28h, 0.09@48h, 0.03@192h; NA and OC have no "
        "modes and NA spends >50% of time in tenures longer than 50 days.");
    bench::print_footer(experiment);
    return 0;
}

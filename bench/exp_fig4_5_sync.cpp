// Figures 4 and 5 — are periodic address changes synchronized?
//
// For every tenure of exactly the AS's period d, bucket the UTC hour at
// which it ended. Orange's weekly changes run on free-running per-session
// clocks and spread across the day; DTAG's daily changes cluster in the
// night hours because most CPEs carry the configurable privacy-reconnect
// feature.

#include "exp_common.hpp"

namespace {

std::array<int, 24> histogram_for_as(const dynaddr::core::AnalysisResults& results,
                                     std::uint32_t asn, double d_hours) {
    std::vector<dynaddr::core::ProbeChanges> subset;
    for (const auto& changes : results.changes) {
        auto probe_as = results.mapping.as_of(changes.probe);
        if (probe_as && *probe_as == asn) subset.push_back(changes);
    }
    return dynaddr::core::sync_histogram(subset, d_hours);
}

void print_histogram(const char* title, const std::array<int, 24>& histogram) {
    std::cout << title << "\n";
    std::vector<std::pair<std::string, double>> bars;
    for (int h = 0; h < 24; ++h)
        bars.emplace_back((h < 10 ? "0" : "") + std::to_string(h) + ":00",
                          histogram[std::size_t(h)]);
    std::cout << dynaddr::chart::render_bar_chart(bars, 48) << "\n";
}

}  // namespace

int main() {
    using namespace dynaddr;
    bench::print_header("Figures 4-5", "Hour of day of periodic address changes");

    auto experiment = bench::run_experiment(isp::presets::paper_scenario());
    const auto& results = experiment.results;

    const auto orange = histogram_for_as(results, 3215, 168.0);
    const auto dtag = histogram_for_as(results, 3320, 24.0);
    print_histogram("Figure 4 — Orange, weekly changes per end hour (GMT):",
                    orange);
    print_histogram("Figure 5 — DTAG, daily changes per end hour (GMT):", dtag);

    auto night_share = [](const std::array<int, 24>& histogram) {
        int night = 0, total = 0;
        for (int h = 0; h < 24; ++h) {
            total += histogram[std::size_t(h)];
            if (h <= 6) night += histogram[std::size_t(h)];
        }
        return total == 0 ? 0.0 : double(night) / total;
    };
    std::cout << "Share of changes ending in hours 0-6: Orange "
              << core::fmt(100.0 * night_share(orange), 1) << "%, DTAG "
              << core::fmt(100.0 * night_share(dtag), 1) << "%\n";

    bench::print_paper_note(
        "Orange's periodic changes are spread roughly evenly over the day "
        "(free-running clocks); almost three quarters of DTAG's land "
        "between hours 0 and 6 (CPE privacy-reconnect), the rest elsewhere "
        "because not every CPE has the feature.");
    bench::print_footer(experiment);
    return 0;
}

// Figure 6 — probes rebooting per day, with firmware-release spikes.
//
// Releases mark every probe pending-install; each installs at its next
// natural connection break (daily for periodic ISPs) or at a forced nudge
// within ~2.5 days, so releases appear as multi-day spikes over the
// baseline reboot noise. The detector recovers the release days and the
// pipeline discards each probe's first post-release reboot so installs do
// not masquerade as power outages.

#include "exp_common.hpp"

int main() {
    using namespace dynaddr;
    bench::print_header("Figure 6", "Reboots per day and firmware spikes");

    auto experiment = bench::run_experiment(isp::presets::outage_scenario());
    const auto& results = experiment.results;

    std::cout << core::render_firmware_series(results.firmware, results.window)
              << "\n";

    std::cout << "Scheduled release days (ground truth):\n";
    for (const auto& release : experiment.config.firmware_releases)
        std::cout << "  " << release.to_string().substr(0, 10) << "\n";

    int matched = 0;
    for (const auto& inferred : results.firmware.release_days)
        for (const auto& truth : experiment.config.firmware_releases)
            if (inferred >= truth - net::Duration::days(1) &&
                inferred <= truth + net::Duration::days(2))
                ++matched;
    std::cout << "Inferred releases matching ground truth (+-1/+2 days): "
              << matched << "/" << results.firmware.release_days.size() << "\n";

    bench::print_paper_note(
        "five spike periods in 2015 with >2x the median reboots for >=2 "
        "consecutive days; inferred days Jan 25, Mar 23, Apr 14, Jul 6, "
        "Oct 5 — three matching documented RIPE updates exactly.");
    bench::print_footer(experiment);
    return 0;
}

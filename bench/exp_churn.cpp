// Daily active-address churn (paper §8, citing Richter et al., IMC 2016).
//
// "Recent research reports that there is continuous churn in the IPv4
// address space: the set of addresses observed at a large CDN on one day
// differs from the set of addresses observed on the next day by 8% on
// average." This experiment computes the same day-over-day delta from
// the probe fleet's vantage point, per AS, and shows how each
// renumbering regime maps onto a churn level.

#include "exp_common.hpp"

#include "core/daily_churn.hpp"

int main() {
    using namespace dynaddr;
    bench::print_header("Daily churn", "Day-over-day active-address delta");

    auto experiment = bench::run_experiment(isp::presets::paper_scenario());
    const auto churn = core::analyze_daily_churn(
        experiment.results.filter.analyzable, experiment.results.mapping,
        experiment.scenario.registry, experiment.results.window);

    // Keep the table readable: All + the 15 biggest ASes.
    core::DailyChurnAnalysis trimmed;
    trimmed.all = churn.all;
    for (std::size_t i = 0; i < churn.by_as.size() && i < 15; ++i)
        trimmed.by_as.push_back(churn.by_as[i]);
    std::cout << core::render_daily_churn(trimmed) << "\n";

    std::cout <<
        "Daily-periodic ISPs (DTAG, Telefonica, A1, ...) sit near 50%: a\n"
        "day's active set holds the outgoing and the incoming address and\n"
        "one of them leaves. Weekly ISPs sit near 1/7 ~ 14%; sticky-DHCP\n"
        "ISPs churn single digits. A population's aggregate churn is the\n"
        "probe-weighted mix of its regimes.\n";

    bench::print_paper_note(
        "Richter et al. measure 8% mean daily churn at a CDN's global "
        "vantage; our fleet-weighted aggregate is far higher because the "
        "RIPE Atlas world (and the paper's) is deliberately biased toward "
        "the periodically-renumbering European ISPs under study. The "
        "per-regime levels — ~50% daily / ~14% weekly / single-digit "
        "stable — are the decomposition the paper's §8 proposes to "
        "attribute that churn.");
    bench::print_footer(experiment);
    return 0;
}

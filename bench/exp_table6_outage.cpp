// Table 6 — conditional probability of renumbering upon outages.
//
// Network outages come from all-pings-lost k-root runs with growing LTS;
// power outages from uptime-counter resets coincident with missing pings
// (v3 probes only, firmware reboots filtered). For probes with >= 3
// outages of both kinds, the table shows what share renumber on more than
// 80% (and on all) of their outages.

#include "exp_common.hpp"

int main() {
    using namespace dynaddr;
    bench::print_header("Table 6", "Address changes upon network/power outages");

    auto experiment = bench::run_experiment(isp::presets::outage_scenario());
    const auto& results = experiment.results;

    std::cout << core::render_table6(results.cond_prob) << "\n";

    std::size_t nw = 0, pw = 0;
    for (const auto& [probe, list] : results.network_outages) nw += list.size();
    for (const auto& [probe, list] : results.power_outages) pw += list.size();
    std::cout << "Detected outages: " << nw << " network, " << pw << " power\n";
    std::cout << "Firmware releases inferred (and their reboots filtered): "
              << results.firmware.release_days.size() << "\n";

    bench::print_paper_note(
        "All row: N=1113, 29.1% / 16.9% / 28.3% / 14.6%. Orange N=84: 79% / "
        "54% / 77% / 50%; Telecom Italia 71%/50%; BT 64%/55%; Proximus "
        "70%/45%; DTAG 58%/47%; Vodafone 83%/75%; Wind 67%/42%; SFR 38%/25%; "
        "ISKON 100%/50%; Rostelecom 71%/29%. PPP ISPs renumber on nearly "
        "every outage; sticky-DHCP ISPs (LGI, Verizon) almost never — our "
        "simulated PPP fleet is cleaner than the real one, so its "
        "percentages sit higher, but the PPP-vs-DHCP split and the AS "
        "ordering match.");
    bench::print_footer(experiment);
    return 0;
}

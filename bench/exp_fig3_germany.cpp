// Figure 3 — total time fraction CDFs for German ASes: most renumber
// daily (DTAG, Telefonica x2, Vodafone, "others"), while the cable ISPs
// Kabel Deutschland and Kabel BW hold addresses for weeks.

#include "exp_common.hpp"

#include <set>

int main() {
    using namespace dynaddr;
    bench::print_header("Figure 3", "Total time fraction for German ASes");

    auto experiment = bench::run_experiment(isp::presets::paper_scenario());
    const auto& results = experiment.results;

    const std::set<std::uint32_t> named = {3320, 3209, 6805, 13184, 31334, 29562};
    std::map<std::uint32_t, core::TotalTimeFraction> by_as;
    core::TotalTimeFraction others;

    // German probes only, grouped by AS; non-named German ASes pool into
    // "others" as the paper does.
    std::map<atlas::ProbeId, std::string> country;
    for (const auto& meta : experiment.scenario.bundle.probes)
        country[meta.probe] = meta.country_code;
    for (const auto& changes : results.changes) {
        if (country[changes.probe] != "DE") continue;
        auto asn = results.mapping.as_of(changes.probe);
        if (!asn) continue;
        if (named.contains(*asn))
            by_as[*asn].add_all(changes.spans);
        else
            others.add_all(changes.spans);
    }

    std::vector<chart::Series> series;
    std::vector<std::vector<std::string>> rows;
    auto add = [&](const std::string& label, const core::TotalTimeFraction& ttf) {
        if (ttf.span_count() == 0) return;
        series.push_back(bench::ttf_series(label, ttf));
        rows.push_back({label, core::fmt(ttf.fraction_at(24.0), 2),
                        core::fmt(1.0 - ttf.fraction_at_or_below(336.0), 2)});
    };
    for (const auto& [asn, ttf] : by_as) {
        const auto info = experiment.scenario.registry.find(asn);
        add(info ? info->name : "AS" + std::to_string(asn), ttf);
    }
    add("others", others);

    std::cout << chart::render_cdf_chart(series, bench::duration_chart_options());
    std::cout << "\n"
              << chart::render_table({"AS", "f(24h)", ">2w"}, rows);

    bench::print_paper_note(
        "24 h share of total time: DTAG 77%, Telefonica1 76%, Telefonica2 "
        "74%, Vodafone 29%, 'others' also show a 24 h mode; Kabel "
        "Deutschland and Kabel BW spend >90% of time in tenures longer than "
        "two weeks.");
    bench::print_footer(experiment);
    return 0;
}

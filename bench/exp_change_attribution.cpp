// Change-cause attribution — the paper's title, answered per change.
//
// Every address change of every analyzable probe is classified as
// administrative, network-outage, power-outage, periodic, or unknown,
// using the detectors the earlier experiments validated individually.
// This is the synthesis the paper's conclusion sketches: per ISP, how
// much churn does each mechanism explain?

#include "exp_common.hpp"

#include "core/change_attribution.hpp"

int main() {
    using namespace dynaddr;
    bench::print_header("Change attribution",
                        "Why did each dynamic address change?");

    // The outage scenario carries k-root + uptime data so outage causes
    // are attributable; plant an administrative renumbering in LGI so all
    // five categories appear.
    auto config = isp::presets::outage_scenario();
    for (auto& isp : config.isps) {
        if (isp.asn != 6830) continue;
        isp.pool_prefixes.push_back(net::IPv4Prefix::parse_or_throw("95.80.0.0/22"));
        isp.announced_prefixes.push_back(
            net::IPv4Prefix::parse_or_throw("95.80.0.0/16"));
        isp::AdminRenumbering event;
        event.when = net::TimePoint::from_date(2015, 7, 15);
        event.retire_pool_index = 0;
        event.enable_pool_index = isp.pool_prefixes.size() - 1;
        isp.admin_events.push_back(event);
    }
    auto experiment = bench::run_experiment(std::move(config));

    const auto attribution = core::attribute_changes(
        experiment.results, experiment.scenario.prefix_table,
        experiment.scenario.registry);
    std::cout << core::render_change_attribution(attribution) << "\n";

    std::cout <<
        "Reading the table:\n"
        "  - Periodic dominates the session-timeout ISPs (Orange, DTAG,\n"
        "    Telefonica, ...): the ISP itself is the renumbering agent.\n"
        "  - Outage columns dominate the no-timeout PPP ISPs (Telecom\n"
        "    Italia, Wind, BT's majority): the subscriber's environment is.\n"
        "  - LGI shows the planted administrative burst plus outage-driven\n"
        "    churn; sticky DHCP leaves almost nothing periodic.\n"
        "  - Unknown collects what the datasets cannot see: reconnects\n"
        "    between ping samples and the stable ISPs' week-scale lease\n"
        "    management — which is why the paper warns that address\n"
        "    tenure is not the same thing as lease duration.\n";

    bench::print_paper_note(
        "the paper attributes changes qualitatively (periodic ISPs in "
        "Table 5, outage-driven ISPs in Table 6, one administrative event "
        "observed) and calls the quantitative churn attribution future "
        "work; this experiment performs it per change.");
    bench::print_footer(experiment);
    return 0;
}

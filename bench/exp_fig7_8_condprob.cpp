// Figures 7 and 8 — per-probe CDFs of P(address change | outage) for the
// five big ASes, network outages (Fig 7, all probe versions) and power
// outages (Fig 8, v3 probes only). PPP ISPs (Orange, DTAG, BT) sit far to
// the right — around half their probes renumber on *every* outage —
// while LGI and Verizon hug the left edge.

#include "exp_common.hpp"

int main() {
    using namespace dynaddr;
    bench::print_header("Figures 7-8", "P(ac|outage) per probe, by AS");

    auto experiment = bench::run_experiment(isp::presets::outage_scenario());
    const auto& results = experiment.results;

    const std::pair<std::uint32_t, const char*> ases[] = {
        {3215, "Orange"}, {3320, "DTAG"}, {2856, "BT"},
        {6830, "LGI"},    {701, "Verizon"}};

    for (const auto kind : {core::DetectedOutage::Kind::Network,
                            core::DetectedOutage::Kind::Power}) {
        const bool network = kind == core::DetectedOutage::Kind::Network;
        std::cout << (network ? "Figure 7 — P(ac|network outage):"
                              : "Figure 8 — P(ac|power outage), v3 only:")
                  << "\n";
        std::vector<chart::Series> series;
        std::vector<std::vector<std::string>> rows;
        for (const auto& [asn, name] : ases) {
            const auto cdf = core::cond_prob_cdf(results.cond_prob.probes,
                                                 results.mapping, asn, kind);
            if (cdf.sample_count() == 0) continue;
            chart::Series s;
            s.label = std::string(name) + " (" +
                      std::to_string(cdf.sample_count()) + ")";
            s.points = cdf.points();
            // Anchor the step function at x=0 so the chart starts there.
            if (s.points.empty() || s.points.front().x > 0.0)
                s.points.insert(s.points.begin(),
                                {0.0, cdf.fraction_at_or_below(0.0)});
            series.push_back(s);
            rows.push_back({name, std::to_string(cdf.sample_count()),
                            core::fmt(cdf.fraction_at_or_below(0.2), 2),
                            core::fmt(cdf.fraction_at_or_below(0.8), 2),
                            core::fmt(1.0 - cdf.fraction_at_or_below(
                                                0.999999), 2)});
        }
        chart::ChartOptions options;
        options.width = 68;
        options.height = 16;
        options.x_label = "Probability of address change given outage";
        options.y_label = "Fraction of probes (CDF)";
        std::cout << chart::render_cdf_chart(series, options);
        std::cout << chart::render_table({"AS", "N", "<=0.2", "<=0.8", "P=1"},
                                         rows)
                  << "\n";
    }

    bench::print_paper_note(
        "Fig 7 probe counts Orange(101) DTAG(57) BT(43) LGI(83) "
        "Verizon(48); about half of Orange and DTAG probes have "
        "P(ac|nw) = 1, while most LGI/Verizon probes sit near 0. Fig 8 "
        "shows the same ordering on fewer (v3) probes, with ~50% of Orange "
        "and ~40% of DTAG at P(ac|pw) = 1.");
    bench::print_footer(experiment);
    return 0;
}

// Ablations over the design choices DESIGN.md calls out:
//   A1  thinned vs full-cadence k-root emission -> same outage attribution
//   A2  periodic-probe threshold sweep (0.10 / 0.25 / 0.50)
//   A3  duration-quantization on/off for mode detection
//   A4  sticky vs non-sticky DHCP pools -> P(ac|outage) shift
//   A5  configured lease duration vs measured tenure (negative result)

#include "exp_common.hpp"

#include <set>

namespace {

using namespace dynaddr;

isp::ScenarioConfig small_outage_world(
    std::optional<atlas::KRootSamplingPolicy> kroot) {
    auto config = isp::presets::quick_scenario();
    config.window = {net::TimePoint::from_date(2015, 1, 1),
                     net::TimePoint::from_date(2015, 5, 1)};
    config.kroot = kroot;
    return config;
}

void ablation_kroot_thinning() {
    std::cout << "\nA1 — k-root thinning (same world, two sampling policies)\n";
    atlas::KRootSamplingPolicy full;
    full.base_cadence = net::Duration::seconds(240);
    full.dense_cadence = net::Duration::seconds(240);
    atlas::KRootSamplingPolicy thinned;
    thinned.base_cadence = net::Duration::hours(4);
    thinned.dense_cadence = net::Duration::seconds(240);
    thinned.dense_window = net::Duration::minutes(16);

    auto run = [&](const atlas::KRootSamplingPolicy& policy) {
        return bench::run_experiment(small_outage_world(policy));
    };
    const auto exp_full = run(full);
    const auto exp_thin = run(thinned);

    auto tally = [](const core::AnalysisResults& results) {
        int outages = 0, changes = 0;
        for (const auto& map :
             {results.network_outcomes, results.power_outcomes})
            for (const auto& [probe, outcomes] : map)
                for (const auto& outcome : outcomes) {
                    ++outages;
                    changes += outcome.address_change;
                }
        return std::pair{outages, changes};
    };
    const auto [full_outages, full_changes] = tally(exp_full.results);
    const auto [thin_outages, thin_changes] = tally(exp_thin.results);
    std::cout << chart::render_table(
        {"Policy", "k-root records", "Outages", "With change"},
        {{"full 240s", std::to_string(exp_full.scenario.bundle.kroot_pings.size()),
          std::to_string(full_outages), std::to_string(full_changes)},
         {"thinned", std::to_string(exp_thin.scenario.bundle.kroot_pings.size()),
          std::to_string(thin_outages), std::to_string(thin_changes)}});
    std::cout << "Thinning keeps the attribution while cutting records "
              << core::fmt(double(exp_full.scenario.bundle.kroot_pings.size()) /
                               double(std::max<std::size_t>(
                                   1, exp_thin.scenario.bundle.kroot_pings.size())),
                           1)
              << "x.\n";
}

void ablation_threshold_sweep() {
    std::cout << "\nA2 — periodic-probe threshold sweep\n";
    auto config = isp::presets::paper_scenario();
    const auto scenario = isp::run_scenario(config);
    std::vector<std::vector<std::string>> rows;
    for (double threshold : {0.10, 0.25, 0.50}) {
        core::PipelineConfig pipeline_config;
        pipeline_config.periodicity.probe_threshold = threshold;
        core::AnalysisPipeline pipeline(pipeline_config);
        const auto results = pipeline.run(scenario.bundle, scenario.prefix_table,
                                          scenario.registry, config.window);
        int periodic = 0;
        for (const auto& probe : results.periodicity.probes)
            if (probe.period_hours) ++periodic;
        rows.push_back({core::fmt(threshold, 2), std::to_string(periodic),
                        std::to_string(results.periodicity.as_rows.size())});
    }
    std::cout << chart::render_table({"Threshold", "Periodic probes", "Table-5 rows"},
                                     rows);
    std::cout << "0.25 (the paper's choice) is a plateau: lowering to 0.10 "
                 "sweeps in noise, raising to 0.50 drops weakly periodic "
                 "probes (outage-truncated tenures).\n";
}

void ablation_quantization() {
    std::cout << "\nA3 — duration quantization for mode detection\n";
    // Raw 23.5-23.8 h tenures (period minus the reconnect gap) only form a
    // 24 h mode after quantization; compare mode mass with and without.
    auto config = isp::presets::paper_scenario();
    const auto scenario = isp::run_scenario(config);
    core::AnalysisPipeline pipeline;
    const auto results = pipeline.run(scenario.bundle, scenario.prefix_table,
                                      scenario.registry, config.window);
    // Quantized mass at 24 h for DTAG vs the raw (unquantized) exact-value
    // mass.
    core::TotalTimeFraction quantized;
    stats::Cdf raw;
    for (const auto& changes : results.changes) {
        auto asn = results.mapping.as_of(changes.probe);
        if (!asn || *asn != 3320) continue;
        quantized.add_all(changes.spans);
        for (const auto& span : changes.spans)
            raw.add(span.duration().to_hours(), span.duration().to_hours());
    }
    std::cout << chart::render_table(
        {"Variant", "mass at exactly 24h"},
        {{"quantized (nearest hour)", core::fmt(quantized.fraction_at(24.0), 3)},
         {"raw seconds", core::fmt(raw.fraction_at(24.0), 3)}});
    std::cout << "Without quantization the daily mode evaporates — every "
                 "tenure is a few minutes short of 24 h because of the TCP "
                 "reconnect gap.\n";
}

void ablation_sticky_pools() {
    std::cout << "\nA4 — sticky vs non-sticky DHCP pool (LGI-like ISP)\n";
    std::vector<std::vector<std::string>> rows;
    for (const bool sticky : {true, false}) {
        auto config = small_outage_world(atlas::KRootSamplingPolicy{});
        config.isps = {isp::presets::lgi()};
        config.isps[0].strategy = sticky ? pool::AllocationStrategy::Sticky
                                         : pool::AllocationStrategy::RandomSpread;
        for (auto& cohort : config.isps[0].cohorts) cohort.probe_count = 30;
        config.specials = {};
        config.cross_as_movers = 0;
        const auto experiment = bench::run_experiment(config);
        int outages = 0, changes = 0;
        for (const auto& map : {experiment.results.network_outcomes,
                                experiment.results.power_outcomes})
            for (const auto& [probe, outcomes] : map)
                for (const auto& outcome : outcomes) {
                    ++outages;
                    changes += outcome.address_change;
                }
        rows.push_back({sticky ? "sticky (RFC 2131 4.3.1)" : "non-sticky",
                        std::to_string(outages), std::to_string(changes),
                        core::fmt(outages ? 100.0 * changes / outages : 0.0, 1) +
                            "%"});
    }
    std::cout << chart::render_table(
        {"Pool policy", "Outages", "With change", "P(ac|outage)"}, rows);
    std::cout << "Dropping address preservation turns a stable DHCP ISP "
                 "into a renumber-on-expiry one — the paper's explanation "
                 "for the DHCP/PPP behavioural split.\n";
}

void ablation_lease_vs_tenure() {
    std::cout << "\nA5 — measured address tenure is NOT the configured lease\n";
    // The paper set out to infer DHCP lease durations and concluded it
    // could not: tenures reflect policy (caps, churn, outages), not the
    // lease timer. Sweep the lease with everything else fixed and watch
    // the measured median tenure ignore it.
    std::vector<std::vector<std::string>> rows;
    for (const int lease_hours : {2, 12, 48}) {
        isp::ScenarioConfig config;
        config.window = {net::TimePoint::from_date(2015, 1, 1),
                         net::TimePoint::from_date(2015, 7, 1)};
        isp::IspSpec spec;
        spec.asn = 64502;
        spec.name = "LeaseNet";
        spec.countries = {"DE"};
        spec.pool_prefixes = {net::IPv4Prefix::parse_or_throw("100.100.0.0/22")};
        spec.announced_prefixes = {net::IPv4Prefix::parse_or_throw("100.100.0.0/16")};
        spec.strategy = pool::AllocationStrategy::Sticky;
        spec.churn_per_hour = 0.05;
        isp::Cohort cohort;
        cohort.probe_count = 24;
        cohort.protocol = atlas::CpeConfig::Wan::Dhcp;
        cohort.dhcp_lease = net::Duration::hours(lease_hours);
        cohort.dhcp_max_age = net::Duration::hours(700);
        cohort.dhcp_max_age_jitter = 0.6;
        spec.cohorts = {cohort};
        config.isps = {spec};
        config.seed = 404;
        const auto experiment = bench::run_experiment(std::move(config));
        stats::Cdf tenures;
        for (const auto& probe : experiment.results.changes)
            for (const auto& span : probe.spans)
                tenures.add(span.duration().to_hours());
        rows.push_back({std::to_string(lease_hours) + "h",
                        std::to_string(tenures.sample_count()),
                        tenures.sample_count() > 0
                            ? core::fmt(tenures.quantile(0.5) / 24.0, 1) + "d"
                            : "-"});
    }
    std::cout << chart::render_table({"Configured lease", "Tenures",
                                      "Median tenure"},
                                     rows);
    std::cout << "A 24x change in the lease barely moves the tenure: the "
                 "administrative cap and pool churn set it, which is why "
                 "the paper concludes \"the address durations we measured "
                 "are distinct from lease durations\".\n";
}

}  // namespace

int main() {
    bench::print_header("Ablations", "Design-choice sensitivity");
    ablation_kroot_thinning();
    ablation_threshold_sweep();
    ablation_quantization();
    ablation_sticky_pools();
    ablation_lease_vs_tenure();
    return 0;
}

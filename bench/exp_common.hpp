#pragma once

// Shared harness for the experiment binaries under bench/. Each binary
// regenerates one table or figure of "Reasons Dynamic Addresses Change"
// (IMC 2016): it simulates the preset world, runs the analysis pipeline
// over the emitted datasets, and prints the measured artifact next to the
// values the paper reports. Absolute numbers differ (our substrate is a
// calibrated simulator, the paper's was the real RIPE Atlas fleet); the
// shape is what must match.

#include <chrono>
#include <iostream>
#include <string>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "isp/presets.hpp"
#include "netcore/ascii_chart.hpp"

namespace dynaddr::bench {

/// A scenario run plus its analysis, with wall-clock accounting.
struct Experiment {
    isp::ScenarioConfig config;
    isp::ScenarioResult scenario;
    core::AnalysisResults results;
    std::int64_t sim_ms = 0;
    std::int64_t analysis_ms = 0;
};

inline Experiment run_experiment(isp::ScenarioConfig config,
                                 core::PipelineConfig pipeline_config = {}) {
    Experiment experiment;
    experiment.config = std::move(config);
    const auto t0 = std::chrono::steady_clock::now();
    experiment.scenario = isp::run_scenario(experiment.config);
    const auto t1 = std::chrono::steady_clock::now();
    core::AnalysisPipeline pipeline(pipeline_config);
    experiment.results = pipeline.run(
        experiment.scenario.bundle, experiment.scenario.prefix_table,
        experiment.scenario.registry, experiment.config.window);
    const auto t2 = std::chrono::steady_clock::now();
    experiment.sim_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0).count();
    experiment.analysis_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(t2 - t1).count();
    return experiment;
}

inline void print_header(const std::string& id, const std::string& title) {
    std::cout << std::string(78, '=') << "\n"
              << id << " — " << title << "\n"
              << std::string(78, '=') << "\n";
}

inline void print_footer(const Experiment& experiment) {
    std::cout << "\n[" << experiment.scenario.bundle.connection_log.size()
              << " connection-log rows, "
              << experiment.scenario.bundle.kroot_pings.size()
              << " k-root records; simulated in " << experiment.sim_ms
              << " ms, analyzed in " << experiment.analysis_ms << " ms]\n";
}

inline void print_paper_note(const std::string& note) {
    std::cout << "\nPaper reports: " << note << "\n";
}

/// TTF CDF of one analysis grouping as a chart series, x in hours.
inline chart::Series ttf_series(const std::string& label,
                                const core::TotalTimeFraction& ttf) {
    chart::Series series;
    series.label = label + " (" + core::fmt(ttf.total_hours() / 8760.0, 1) + "y)";
    series.points = ttf.cdf().points();
    return series;
}

/// Standard log-x chart options for duration CDFs (Figures 1-3).
inline chart::ChartOptions duration_chart_options() {
    chart::ChartOptions options;
    options.log_x = true;
    options.width = 68;
    options.height = 18;
    options.x_label = "IP address-duration, hours (log scale)";
    options.y_label = "Fraction of total address-duration (CDF)";
    return options;
}

}  // namespace dynaddr::bench

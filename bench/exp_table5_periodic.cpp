// Table 5 — autonomous systems that renumber periodically.
//
// For every (AS, d) group with >= 5 changed probes and >= 3 probes whose
// total time fraction at d exceeds 0.25, the paper reports the period d,
// probe counts, persistence percentages (f > 0.5 / f > 0.75), the share
// of probes whose longest tenure never exceeded d, and the share whose
// long tenures are harmonics (multiples) of d.

#include "exp_common.hpp"

int main() {
    using namespace dynaddr;
    bench::print_header("Table 5", "Periodically renumbering ASes");

    auto experiment = bench::run_experiment(isp::presets::paper_scenario());
    std::cout << core::render_table5(experiment.results.periodicity) << "\n";

    std::cout << "Configured ground truth (ISP -> session timeout):\n";
    for (const auto& isp : experiment.config.isps) {
        for (const auto& cohort : isp.cohorts) {
            if (!cohort.session_timeout) continue;
            std::cout << "  " << isp.name << " (AS" << isp.asn << "): d = "
                      << cohort.session_timeout->to_hours() << " h x "
                      << cohort.probe_count << " probes, skip "
                      << cohort.skip_renumber_probability << "\n";
        }
    }

    bench::print_paper_note(
        "headline rows — All/24h: 193 periodic probes of 2,272; All/168h: "
        "123. Orange d=168 (111/122, MAX<=d 98%), DTAG d=24 (51/63, 78%), BT "
        "d=337 (13/67, 38%), Telefonica DE 24h, Rostelecom 24h, Proximus "
        "36h, A1 24h, Hrvatski/ISKON 24h, ANTEL 12h, GVT 48h, Mauritius "
        "24h, Kazakhtelecom 24h, Orange Polska 22h+24h, VIPnet 92h, Digi "
        "168h, Free 24h, SONATEL 24h, Net by Net 47h.");
    bench::print_footer(experiment);
    return 0;
}
